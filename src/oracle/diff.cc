#include "oracle/diff.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "trace/serialize.hh"

namespace xfd::oracle
{

namespace
{

std::string
classSetStr(const std::set<core::BugType> &classes)
{
    if (classes.empty())
        return "{}";
    std::string s = "{";
    for (core::BugType t : classes) {
        if (s.size() > 1)
            s += ", ";
        s += core::bugTypeId(t);
    }
    return s + "}";
}

void
writeClassArray(obs::JsonWriter &w, const std::string &key,
                const std::set<core::BugType> &classes)
{
    w.key(key).beginArray();
    for (core::BugType t : classes)
        w.value(core::bugTypeId(t));
    w.endArray();
}

/**
 * One JSON sidecar per disagreeing failure point: enough to rebuild
 * the exact candidate image (pre-trace + point + mask) and compare
 * the class sets again.
 */
std::string
writeDisagreementArtifact(const std::string &dir,
                          const FpAgreement &a,
                          const FpOracleResult &ores)
{
    std::string path =
        dir + "/disagreement-fp" + std::to_string(a.fp) + ".json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("oracle: cannot write artifact %s", path.c_str());
        return "";
    }
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("format", "xfd-oracle-disagreement-v1");
    w.field("pre_trace", "pre-trace.xft");
    w.field("failure_point", static_cast<std::uint64_t>(a.fp));
    w.field("frontier_size",
            static_cast<std::uint64_t>(a.frontier));
    w.key("frontier_seqs").beginArray();
    for (const auto &ev : ores.frontier)
        w.value(static_cast<std::uint64_t>(ev.seq));
    w.endArray();
    // The anchor mask: the candidate whose classes must equal the
    // detector's.
    w.field("mask", ores.candidates.front().mask.toHex());
    writeClassArray(w, "detector_classes", a.detectorClasses);
    writeClassArray(w, "oracle_classes", a.oracleClasses);
    w.field("sampled", a.sampled);
    w.endObject();
    os << "\n";
    return path;
}

} // namespace

double
DiffReport::agreementRate() const
{
    if (failurePoints == 0)
        return 1.0;
    return static_cast<double>(agreements) /
           static_cast<double>(failurePoints);
}

std::string
DiffReport::summary() const
{
    std::string s = strprintf(
        "=== oracle differential report: %zu failure point(s), "
        "%zu disagreement(s) ===\n"
        "agreement rate: %.3f (%zu/%zu), crash states: %zu legal, "
        "%zu candidate run(s), %zu sampled\n"
        "partial-candidate extras: %zu explained, %zu unexplained\n",
        failurePoints, disagreements, agreementRate(), agreements,
        failurePoints, statesEnumerated, candidatesRun,
        subsetsSampled, extrasExplained, extrasUnexplained);
    if (prunedRechecked) {
        s += strprintf("lint-pruned points re-checked against their "
                       "kept representatives: %zu\n",
                       prunedRechecked);
    }
    for (const auto &a : perFp) {
        if (a.agree)
            continue;
        s += strprintf("  DISAGREE fp#%u: detector %s oracle %s "
                       "(frontier %zu%s%s)\n",
                       a.fp, classSetStr(a.detectorClasses).c_str(),
                       classSetStr(a.oracleClasses).c_str(),
                       a.frontier, a.sampled ? ", sampled" : "",
                       a.prunedRecheck ? ", pruned" : "");
    }
    for (const auto &p : artifacts)
        s += strprintf("  artifact: %s\n", p.c_str());
    return s;
}

DiffReport
runDifferentialCampaign(pm::PmPool &pool, const core::ProgramFn &pre,
                        const core::ProgramFn &post,
                        const DiffConfig &cfg)
{
    DiffReport rep;

    core::DetectorConfig dcfg = cfg.detector;
    if (dcfg.crashImageMode) {
        warn("oracle: crash-image mode keeps a line-granular durable "
             "image the cell-granular oracle cannot reproduce; "
             "running the differential campaign without it");
        dcfg.crashImageMode = false;
    }

    pm::PmImage initial = pool.snapshot();

    // Capture the campaign's raw material through the observer hooks;
    // never re-run the pre-failure stage (fault-injection hooks count
    // occurrences cumulatively, so a second run mutates differently).
    trace::TraceBuffer preTrace;
    std::map<std::uint32_t, std::set<core::BugType>> detectorByFp;
    std::mutex fpLock;

    core::CampaignObserver localObs;
    core::CampaignObserver *obsv =
        cfg.observer ? cfg.observer : &localObs;

    // Interpose on the campaign event interface, chaining to
    // whatever hooks the caller installed.
    struct OracleCapture : core::CampaignHooks
    {
        core::CampaignHooks *inner = nullptr;
        trace::TraceBuffer *preTrace = nullptr;
        std::map<std::uint32_t, std::set<core::BugType>> *byFp =
            nullptr;
        std::mutex *lock = nullptr;

        void
        onPreTraceReady(const trace::TraceBuffer &b) override
        {
            if (inner)
                inner->onPreTraceReady(b);
            *preTrace = b;
        }

        void
        onFailurePoint(std::uint32_t fp,
                       const core::BugSink &sink) override
        {
            if (inner)
                inner->onFailurePoint(fp, sink);
            std::set<core::BugType> classes;
            for (const auto &b : sink.bugs()) {
                // Performance bugs are a full-trace property and
                // never appear in per-point sinks; filter
                // defensively anyway.
                if (b.type != core::BugType::Performance)
                    classes.insert(b.type);
            }
            std::lock_guard<std::mutex> guard(*lock);
            (*byFp)[fp] = std::move(classes);
        }

        void
        onProgress(const core::ProgressUpdate &u) override
        {
            if (inner)
                inner->onProgress(u);
        }
    } capture;
    capture.inner = obsv->hooks;
    capture.preTrace = &preTrace;
    capture.byFp = &detectorByFp;
    capture.lock = &fpLock;
    obsv->hooks = &capture;

    core::Driver driver(pool, dcfg);
    driver.setObserver(obsv);
    rep.detector = driver.runParallel(pre, post, cfg.threads);
    obsv->hooks = capture.inner;

    // The plan is deterministic over (trace, config); re-derive it so
    // the oracle visits exactly the points the detector failed at —
    // including, under --backend=batched, the points the detector
    // folded into representatives: the oracle runs those for real and
    // their anchor classes must match what the detector reported at
    // the kept representative.
    core::FailurePlan plan = core::planFailurePoints(preTrace, dcfg);
    rep.failurePoints = plan.points.size();

    std::map<std::uint32_t, std::uint32_t> prunedRep;
    if (dcfg.batchingOn() && !plan.points.empty()) {
        lint::PruneVerdicts v = lint::computePruneVerdicts(
            preTrace, plan.points, dcfg.granularity);
        for (const auto &p : v.pruned)
            prunedRep[p.fp] = p.keptRep;
    }

    OracleConfig ocfg;
    ocfg.exhaustive = cfg.exhaustive;
    ocfg.sampleCount = cfg.sampleCount;
    ocfg.frontierLimit = dcfg.oracleFrontierLimit;
    ocfg.seed = cfg.seed;
    ocfg.detector = dcfg;
    CrashStateOracle oracle(preTrace, initial, ocfg);

    bool wrotePreTrace = false;
    auto toracle = std::chrono::steady_clock::now();
    for (std::uint32_t fp : plan.points) {
        FpOracleResult ores = oracle.runFailurePoint(fp, post);

        FpAgreement a;
        a.fp = fp;
        auto pruned = prunedRep.find(fp);
        std::uint32_t detectorFp =
            pruned == prunedRep.end() ? fp : pruned->second;
        if (pruned != prunedRep.end()) {
            a.prunedRecheck = true;
            rep.prunedRechecked++;
        }
        auto it = detectorByFp.find(detectorFp);
        if (it != detectorByFp.end())
            a.detectorClasses = it->second;
        a.oracleClasses = ores.anchorClasses();
        a.frontier = ores.frontier.size();
        a.candidates = ores.candidates.size();
        a.sampled = ores.sampled;
        a.agree = a.detectorClasses == a.oracleClasses;

        rep.statesEnumerated += ores.statesLegal;
        rep.candidatesRun += ores.candidates.size();
        if (ores.sampled)
            rep.subsetsSampled += ores.candidates.size();

        for (std::size_t c = 1; c < ores.candidates.size(); c++) {
            for (core::BugType t : ores.candidates[c].classes) {
                if (!a.oracleClasses.count(t))
                    a.extras.insert(t);
            }
        }
        for (core::BugType t : a.extras) {
            // A partial image can race (an in-flight write it leaves
            // out), fail recovery (metadata half-applied), or expose
            // an older committed version (semantic); all presuppose a
            // non-empty frontier.
            (void)t;
            if (a.frontier > 0)
                rep.extrasExplained++;
            else
                rep.extrasUnexplained++;
        }

        if (a.agree) {
            rep.agreements++;
        } else {
            rep.disagreements++;
            if (!cfg.artifactDir.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(cfg.artifactDir,
                                                    ec);
                if (!wrotePreTrace) {
                    std::ofstream os(cfg.artifactDir +
                                         "/pre-trace.xft",
                                     std::ios::binary |
                                         std::ios::trunc);
                    if (os) {
                        trace::writeTrace(preTrace, os);
                        rep.artifacts.push_back(cfg.artifactDir +
                                                "/pre-trace.xft");
                        wrotePreTrace = true;
                    } else {
                        warn("oracle: cannot write %s/pre-trace.xft",
                             cfg.artifactDir.c_str());
                    }
                }
                std::string p = writeDisagreementArtifact(
                    cfg.artifactDir, a, ores);
                if (!p.empty())
                    rep.artifacts.push_back(std::move(p));
            }
        }
        rep.perFp.push_back(std::move(a));
    }
    rep.oracleSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      toracle)
            .count();
    rep.detector.stats.phases.note(obs::Phase::Oracle,
                                   rep.oracleSeconds);
    return rep;
}

void
exportOracleStats(obs::StatsRegistry &reg, const DiffReport &r)
{
    auto set = [&](const char *name, const char *desc, double v) {
        reg.scalar(name, desc).set(v);
    };
    set("campaign.oracle.failure_points",
        "failure points compared against the oracle",
        static_cast<double>(r.failurePoints));
    set("campaign.oracle.states_enumerated",
        "legal crash states identified",
        static_cast<double>(r.statesEnumerated));
    set("campaign.oracle.subsets_sampled",
        "candidates run at sampled (over-limit) points",
        static_cast<double>(r.subsetsSampled));
    set("campaign.oracle.candidates_run",
        "candidate recovery executions",
        static_cast<double>(r.candidatesRun));
    set("campaign.oracle.pruned_rechecked",
        "lint-pruned points the oracle re-checked",
        static_cast<double>(r.prunedRechecked));
    set("campaign.oracle.agreements",
        "failure points where detector and oracle classes match",
        static_cast<double>(r.agreements));
    set("campaign.oracle.disagreements",
        "failure points where the class sets differ",
        static_cast<double>(r.disagreements));
    set("campaign.oracle.extras_explained",
        "partial-candidate extra classes with an attribution",
        static_cast<double>(r.extrasExplained));
    set("campaign.oracle.extras_unexplained",
        "partial-candidate extra classes without one",
        static_cast<double>(r.extrasUnexplained));
    set("campaign.phase.oracle_seconds",
        "oracle enumeration + candidate recovery wall seconds",
        r.oracleSeconds);

    obs::Scalar &points =
        reg.scalar("campaign.oracle.failure_points", "");
    obs::Scalar &agree = reg.scalar("campaign.oracle.agreements", "");
    reg.formula("campaign.oracle.agreement_rate",
                "agreeing points / compared points",
                [&points, &agree] {
                    return points.value()
                               ? agree.value() / points.value()
                               : 1.0;
                });
}

core::JsonSection
oracleJsonSection(const DiffReport &r)
{
    return core::JsonSection{
        "oracle", [&r](obs::JsonWriter &w) {
            w.beginObject();
            w.field("failure_points",
                    static_cast<std::uint64_t>(r.failurePoints));
            w.field("agreements",
                    static_cast<std::uint64_t>(r.agreements));
            w.field("disagreements",
                    static_cast<std::uint64_t>(r.disagreements));
            w.field("agreement_rate", r.agreementRate());
            w.field("states_enumerated",
                    static_cast<std::uint64_t>(r.statesEnumerated));
            w.field("subsets_sampled",
                    static_cast<std::uint64_t>(r.subsetsSampled));
            w.field("candidates_run",
                    static_cast<std::uint64_t>(r.candidatesRun));
            w.field("pruned_rechecked",
                    static_cast<std::uint64_t>(r.prunedRechecked));
            w.field("extras_explained",
                    static_cast<std::uint64_t>(r.extrasExplained));
            w.field("extras_unexplained",
                    static_cast<std::uint64_t>(r.extrasUnexplained));
            w.field("oracle_seconds", r.oracleSeconds);
            w.key("disagreement_fps").beginArray();
            for (const auto &a : r.perFp) {
                if (!a.agree)
                    w.value(static_cast<std::uint64_t>(a.fp));
            }
            w.endArray();
            w.key("artifacts").beginArray();
            for (const auto &p : r.artifacts)
                w.value(p);
            w.endArray();
            w.endObject();
        }};
}

} // namespace xfd::oracle
