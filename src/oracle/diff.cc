#include "oracle/diff.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "lint/frontier.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "trace/serialize.hh"

namespace xfd::oracle
{

namespace
{

std::string
classSetStr(const std::set<core::BugType> &classes)
{
    if (classes.empty())
        return "{}";
    std::string s = "{";
    for (core::BugType t : classes) {
        if (s.size() > 1)
            s += ", ";
        s += core::bugTypeId(t);
    }
    return s + "}";
}

void
writeClassArray(obs::JsonWriter &w, const std::string &key,
                const std::set<core::BugType> &classes)
{
    w.key(key).beginArray();
    for (core::BugType t : classes)
        w.value(core::bugTypeId(t));
    w.endArray();
}

/**
 * One JSON sidecar per disagreeing failure point: enough to rebuild
 * the exact candidate image (pre-trace + point + mask) and compare
 * the class sets again.
 */
std::string
writeDisagreementArtifact(const std::string &dir,
                          const FpAgreement &a,
                          const FpOracleResult &ores)
{
    std::string path =
        dir + "/disagreement-fp" + std::to_string(a.fp) + ".json";
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        warn("oracle: cannot write artifact %s", path.c_str());
        return "";
    }
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("format", "xfd-oracle-disagreement-v1");
    w.field("pre_trace", "pre-trace.xft");
    w.field("failure_point", static_cast<std::uint64_t>(a.fp));
    w.field("frontier_size",
            static_cast<std::uint64_t>(a.frontier));
    w.key("frontier_seqs").beginArray();
    for (const auto &ev : ores.frontier)
        w.value(static_cast<std::uint64_t>(ev.seq));
    w.endArray();
    // The anchor mask: the candidate whose classes must equal the
    // detector's.
    w.field("mask", ores.candidates.front().mask.toHex());
    writeClassArray(w, "detector_classes", a.detectorClasses);
    writeClassArray(w, "oracle_classes", a.oracleClasses);
    w.field("sampled", a.sampled);
    w.endObject();
    os << "\n";
    return path;
}

} // namespace

double
DiffReport::agreementRate() const
{
    if (failurePoints == 0)
        return 1.0;
    return static_cast<double>(agreements) /
           static_cast<double>(failurePoints);
}

std::string
DiffReport::summary() const
{
    std::string s = strprintf(
        "=== oracle differential report: %zu failure point(s), "
        "%zu disagreement(s) ===\n"
        "agreement rate: %.3f (%zu/%zu), crash states: %zu legal, "
        "%zu candidate run(s), %zu sampled\n"
        "partial-candidate extras: %zu explained, %zu unexplained\n",
        failurePoints, disagreements, agreementRate(), agreements,
        failurePoints, statesEnumerated, candidatesRun,
        subsetsSampled, extrasExplained, extrasUnexplained);
    if (prunedRechecked) {
        s += strprintf("lint-pruned points re-checked against their "
                       "kept representatives: %zu\n",
                       prunedRechecked);
    }
    if (partialChecked || crashPrunedRechecked) {
        s += strprintf(
            "crash-states conformance: %zu partial finding group(s) "
            "checked (%zu disagree), %zu pruned candidate(s) "
            "re-checked (%zu disagree)\n",
            partialChecked, partialDisagreements, crashPrunedRechecked,
            crashPrunedDisagreements);
    }
    for (const auto &a : perFp) {
        if (a.agree)
            continue;
        s += strprintf("  DISAGREE fp#%u: detector %s oracle %s "
                       "(frontier %zu%s%s)\n",
                       a.fp, classSetStr(a.detectorClasses).c_str(),
                       classSetStr(a.oracleClasses).c_str(),
                       a.frontier, a.sampled ? ", sampled" : "",
                       a.prunedRecheck ? ", pruned" : "");
    }
    for (const auto &p : artifacts)
        s += strprintf("  artifact: %s\n", p.c_str());
    return s;
}

DiffReport
runDifferentialCampaign(pm::PmPool &pool, const core::ProgramFn &pre,
                        const core::ProgramFn &post,
                        const DiffConfig &cfg)
{
    DiffReport rep;

    core::DetectorConfig dcfg = cfg.detector;
    if (dcfg.crashImageMode) {
        warn("oracle: crash-image mode keeps a line-granular durable "
             "image the cell-granular oracle cannot reproduce; "
             "running the differential campaign without it");
        dcfg.crashImageMode = false;
    }

    pm::PmImage initial = pool.snapshot();

    // Capture the campaign's raw material through the observer hooks;
    // never re-run the pre-failure stage (fault-injection hooks count
    // occurrences cumulatively, so a second run mutates differently).
    trace::TraceBuffer preTrace;
    std::map<std::uint32_t, std::set<core::BugType>> detectorByFp;
    // Per-point partial-image findings (--crash-states), grouped by
    // the persisted mask that first exposed them.
    std::map<std::uint32_t,
             std::map<trace::SubsetMask, std::set<core::BugType>>>
        detectorByFpMask;
    std::mutex fpLock;

    core::CampaignObserver localObs;
    core::CampaignObserver *obsv =
        cfg.observer ? cfg.observer : &localObs;

    // Interpose on the campaign event interface, chaining to
    // whatever hooks the caller installed.
    struct OracleCapture : core::CampaignHooks
    {
        core::CampaignHooks *inner = nullptr;
        trace::TraceBuffer *preTrace = nullptr;
        std::map<std::uint32_t, std::set<core::BugType>> *byFp =
            nullptr;
        std::map<std::uint32_t,
                 std::map<trace::SubsetMask, std::set<core::BugType>>>
            *byFpMask = nullptr;
        std::mutex *lock = nullptr;

        void
        onPreTraceReady(const trace::TraceBuffer &b) override
        {
            if (inner)
                inner->onPreTraceReady(b);
            *preTrace = b;
        }

        void
        onFailurePoint(std::uint32_t fp,
                       const core::BugSink &sink) override
        {
            if (inner)
                inner->onFailurePoint(fp, sink);
            std::set<core::BugType> classes;
            std::map<trace::SubsetMask, std::set<core::BugType>>
                partial;
            for (const auto &b : sink.bugs()) {
                // Performance bugs are a full-trace property and
                // never appear in per-point sinks; filter
                // defensively anyway.
                if (b.type == core::BugType::Performance)
                    continue;
                // Findings first exposed on a partial crash image
                // (--crash-states) are conformance-checked against
                // the oracle's candidate at the same mask, not the
                // anchor.
                if (b.persistedMask.size() && !b.persistedMask.all())
                    partial[b.persistedMask].insert(b.type);
                else
                    classes.insert(b.type);
            }
            std::lock_guard<std::mutex> guard(*lock);
            (*byFp)[fp] = std::move(classes);
            if (!partial.empty())
                (*byFpMask)[fp] = std::move(partial);
        }

        void
        onProgress(const core::ProgressUpdate &u) override
        {
            if (inner)
                inner->onProgress(u);
        }
    } capture;
    capture.inner = obsv->hooks;
    capture.preTrace = &preTrace;
    capture.byFp = &detectorByFp;
    capture.byFpMask = &detectorByFpMask;
    capture.lock = &fpLock;
    obsv->hooks = &capture;

    core::Driver driver(pool, dcfg);
    driver.setObserver(obsv);
    rep.detector = driver.runParallel(pre, post, cfg.threads);
    obsv->hooks = capture.inner;

    // The plan is deterministic over (trace, config); re-derive it so
    // the oracle visits exactly the points the detector failed at —
    // including, under --backend=batched, the points the detector
    // folded into representatives: the oracle runs those for real and
    // their anchor classes must match what the detector reported at
    // the kept representative.
    core::FailurePlan plan = core::planFailurePoints(preTrace, dcfg);
    rep.failurePoints = plan.points.size();

    std::map<std::uint32_t, std::uint32_t> prunedRep;
    if (dcfg.batchingOn() && !plan.points.empty()) {
        lint::PruneVerdicts v = lint::computePruneVerdicts(
            preTrace, plan.points, dcfg.granularity);
        for (const auto &p : v.pruned)
            prunedRep[p.fp] = p.keptRep;
    }

    OracleConfig ocfg;
    ocfg.exhaustive = cfg.exhaustive;
    ocfg.sampleCount = cfg.sampleCount;
    ocfg.frontierLimit = dcfg.oracleFrontierLimit;
    ocfg.seed = cfg.seed;
    ocfg.detector = dcfg;
    // --crash-states conformance: mirror the detector's enumeration
    // knobs and (below) its per-point sampler streams, so the oracle
    // materializes exactly the masks the detector executed and its
    // verdict at each of them is a direct cross-check.
    bool csOn = dcfg.crashStatesOn() && !dcfg.eadrOn();
    if (csOn) {
        bool csExhaustive = false;
        std::size_t csSample = 0;
        core::DetectorConfig::parseCrashStates(
            dcfg.crashStates, csExhaustive, csSample);
        ocfg.exhaustive = csExhaustive;
        ocfg.sampleCount = csSample ? csSample : 64;
        ocfg.seed = dcfg.crashStatesSeed;
    }
    CrashStateOracle oracle(preTrace, initial, ocfg);

    // Mirror of the detector's candidate equivalence-class identity
    // (ordering-point location + lint frontier signature): keys the
    // sampler stream and resolves its pruning records.
    lint::FrontierState lintState(dcfg.granularity, dcfg.eadrOn());
    std::uint32_t lintCursor = 0;
    // Oracle verdicts by (point, mask hex), kept only for re-checking
    // the detector's equivalence-pruned candidates.
    std::map<std::uint32_t,
             std::map<std::string, std::set<core::BugType>>>
        oracleByFpMask;
    bool wantPruneRecheck =
        csOn && !rep.detector.stats.crashPruned.empty();

    bool wrotePreTrace = false;
    auto toracle = std::chrono::steady_clock::now();
    for (std::uint32_t fp : plan.points) {
        FpAgreement a;
        a.fp = fp;
        auto pruned = prunedRep.find(fp);
        std::uint32_t detectorFp =
            pruned == prunedRep.end() ? fp : pruned->second;
        if (pruned != prunedRep.end()) {
            a.prunedRecheck = true;
            rep.prunedRechecked++;
        }

        // Reproduce the detector's sampler stream for this point (the
        // FNV-1a hash of its equivalence class) and hand the oracle
        // the masks the detector's findings were first exposed on, so
        // a verdict exists at every one of them even if enumeration
        // drifts.
        std::uint64_t stream = 0;
        const std::uint64_t *streamPtr = nullptr;
        std::vector<trace::SubsetMask> detMasks;
        const std::vector<trace::SubsetMask> *extraMasks = nullptr;
        if (csOn) {
            for (; lintCursor < fp; lintCursor++)
                lintState.apply(preTrace[lintCursor]);
            std::string group =
                preTrace[fp].loc.str() + '|' + lintState.signature();
            stream = 1469598103934665603ull; // FNV-1a 64
            for (char ch : group)
                stream = (stream ^ static_cast<unsigned char>(ch)) *
                         1099511628211ull;
            streamPtr = &stream;
            auto mit = detectorByFpMask.find(detectorFp);
            if (mit != detectorByFpMask.end()) {
                for (const auto &[m, classes] : mit->second)
                    detMasks.push_back(m);
                extraMasks = &detMasks;
            }
        }

        FpOracleResult ores =
            oracle.runFailurePoint(fp, post, extraMasks, streamPtr);

        auto it = detectorByFp.find(detectorFp);
        if (it != detectorByFp.end())
            a.detectorClasses = it->second;
        a.oracleClasses = ores.anchorClasses();
        a.frontier = ores.frontier.size();
        a.candidates = ores.candidates.size();
        a.sampled = ores.sampled;
        a.agree = a.detectorClasses == a.oracleClasses;

        if (csOn) {
            std::map<std::string, const std::set<core::BugType> *>
                omasks;
            for (const auto &c : ores.candidates)
                omasks[c.mask.toHex()] = &c.classes;
            auto mit = detectorByFpMask.find(detectorFp);
            if (mit != detectorByFpMask.end()) {
                for (const auto &[m, classes] : mit->second) {
                    rep.partialChecked++;
                    auto oit = omasks.find(m.toHex());
                    bool ok = oit != omasks.end();
                    if (ok) {
                        for (core::BugType t : classes) {
                            if (!oit->second->count(t))
                                ok = false;
                        }
                    }
                    if (!ok) {
                        rep.partialDisagreements++;
                        a.agree = false;
                    }
                }
            }
            if (wantPruneRecheck) {
                auto &slot = oracleByFpMask[fp];
                for (const auto &[hex, classes] : omasks)
                    slot[hex] = *classes;
            }
        }

        rep.statesEnumerated += ores.statesLegal;
        rep.candidatesRun += ores.candidates.size();
        if (ores.sampled)
            rep.subsetsSampled += ores.candidates.size();

        for (std::size_t c = 1; c < ores.candidates.size(); c++) {
            for (core::BugType t : ores.candidates[c].classes) {
                if (!a.oracleClasses.count(t))
                    a.extras.insert(t);
            }
        }
        for (core::BugType t : a.extras) {
            // A partial image can race (an in-flight write it leaves
            // out), fail recovery (metadata half-applied), or expose
            // an older committed version (semantic); all presuppose a
            // non-empty frontier.
            (void)t;
            if (a.frontier > 0)
                rep.extrasExplained++;
            else
                rep.extrasUnexplained++;
        }

        if (a.agree) {
            rep.agreements++;
        } else {
            rep.disagreements++;
            if (!cfg.artifactDir.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(cfg.artifactDir,
                                                    ec);
                if (!wrotePreTrace) {
                    std::ofstream os(cfg.artifactDir +
                                         "/pre-trace.xft",
                                     std::ios::binary |
                                         std::ios::trunc);
                    if (os) {
                        trace::writeTrace(preTrace, os);
                        rep.artifacts.push_back(cfg.artifactDir +
                                                "/pre-trace.xft");
                        wrotePreTrace = true;
                    } else {
                        warn("oracle: cannot write %s/pre-trace.xft",
                             cfg.artifactDir.c_str());
                    }
                }
                std::string p = writeDisagreementArtifact(
                    cfg.artifactDir, a, ores);
                if (!p.empty())
                    rep.artifacts.push_back(std::move(p));
            }
        }
        rep.perFp.push_back(std::move(a));
    }

    // Re-check the detector's equivalence-pruned candidates: the
    // oracle ran the same mask at both the skipped point and the
    // representative that executed in its place (same stream + seed,
    // so both enumerations produced it); identical verdicts mean the
    // pruning rule lost nothing.
    if (wantPruneRecheck) {
        for (const auto &p : rep.detector.stats.crashPruned) {
            rep.crashPrunedRechecked++;
            const std::set<core::BugType> *skipped = nullptr;
            const std::set<core::BugType> *kept = nullptr;
            auto fa = oracleByFpMask.find(p.fp);
            if (fa != oracleByFpMask.end()) {
                auto ma = fa->second.find(p.maskHex);
                if (ma != fa->second.end())
                    skipped = &ma->second;
            }
            auto fb = oracleByFpMask.find(p.repFp);
            if (fb != oracleByFpMask.end()) {
                auto mb = fb->second.find(p.maskHex);
                if (mb != fb->second.end())
                    kept = &mb->second;
            }
            if (!(skipped && kept && *skipped == *kept))
                rep.crashPrunedDisagreements++;
        }
    }
    rep.oracleSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      toracle)
            .count();
    rep.detector.stats.phases.note(obs::Phase::Oracle,
                                   rep.oracleSeconds);
    return rep;
}

void
exportOracleStats(obs::StatsRegistry &reg, const DiffReport &r)
{
    auto set = [&](const char *name, const char *desc, double v) {
        reg.scalar(name, desc).set(v);
    };
    set("campaign.oracle.failure_points",
        "failure points compared against the oracle",
        static_cast<double>(r.failurePoints));
    set("campaign.oracle.states_enumerated",
        "legal crash states identified",
        static_cast<double>(r.statesEnumerated));
    set("campaign.oracle.subsets_sampled",
        "candidates run at sampled (over-limit) points",
        static_cast<double>(r.subsetsSampled));
    set("campaign.oracle.candidates_run",
        "candidate recovery executions",
        static_cast<double>(r.candidatesRun));
    set("campaign.oracle.pruned_rechecked",
        "lint-pruned points the oracle re-checked",
        static_cast<double>(r.prunedRechecked));
    set("campaign.oracle.agreements",
        "failure points where detector and oracle classes match",
        static_cast<double>(r.agreements));
    set("campaign.oracle.disagreements",
        "failure points where the class sets differ",
        static_cast<double>(r.disagreements));
    set("campaign.oracle.extras_explained",
        "partial-candidate extra classes with an attribution",
        static_cast<double>(r.extrasExplained));
    set("campaign.oracle.extras_unexplained",
        "partial-candidate extra classes without one",
        static_cast<double>(r.extrasUnexplained));
    set("campaign.oracle.partial_checked",
        "detector partial-image finding groups cross-checked",
        static_cast<double>(r.partialChecked));
    set("campaign.oracle.partial_disagreements",
        "partial-image groups the oracle could not reproduce",
        static_cast<double>(r.partialDisagreements));
    set("campaign.oracle.crash_pruned_rechecked",
        "equivalence-pruned candidates re-checked by the oracle",
        static_cast<double>(r.crashPrunedRechecked));
    set("campaign.oracle.crash_pruned_disagreements",
        "pruned candidates whose verdict differed from their "
        "representative",
        static_cast<double>(r.crashPrunedDisagreements));
    set("campaign.phase.oracle_seconds",
        "oracle enumeration + candidate recovery wall seconds",
        r.oracleSeconds);

    obs::Scalar &points =
        reg.scalar("campaign.oracle.failure_points", "");
    obs::Scalar &agree = reg.scalar("campaign.oracle.agreements", "");
    reg.formula("campaign.oracle.agreement_rate",
                "agreeing points / compared points",
                [&points, &agree] {
                    return points.value()
                               ? agree.value() / points.value()
                               : 1.0;
                });
}

core::JsonSection
oracleJsonSection(const DiffReport &r)
{
    return core::JsonSection{
        "oracle", [&r](obs::JsonWriter &w) {
            w.beginObject();
            w.field("failure_points",
                    static_cast<std::uint64_t>(r.failurePoints));
            w.field("agreements",
                    static_cast<std::uint64_t>(r.agreements));
            w.field("disagreements",
                    static_cast<std::uint64_t>(r.disagreements));
            w.field("agreement_rate", r.agreementRate());
            w.field("states_enumerated",
                    static_cast<std::uint64_t>(r.statesEnumerated));
            w.field("subsets_sampled",
                    static_cast<std::uint64_t>(r.subsetsSampled));
            w.field("candidates_run",
                    static_cast<std::uint64_t>(r.candidatesRun));
            w.field("pruned_rechecked",
                    static_cast<std::uint64_t>(r.prunedRechecked));
            w.field("extras_explained",
                    static_cast<std::uint64_t>(r.extrasExplained));
            w.field("extras_unexplained",
                    static_cast<std::uint64_t>(r.extrasUnexplained));
            w.field("partial_checked",
                    static_cast<std::uint64_t>(r.partialChecked));
            w.field("partial_disagreements",
                    static_cast<std::uint64_t>(
                        r.partialDisagreements));
            w.field("crash_pruned_rechecked",
                    static_cast<std::uint64_t>(
                        r.crashPrunedRechecked));
            w.field("crash_pruned_disagreements",
                    static_cast<std::uint64_t>(
                        r.crashPrunedDisagreements));
            w.field("oracle_seconds", r.oracleSeconds);
            w.key("disagreement_fps").beginArray();
            for (const auto &a : r.perFp) {
                if (!a.agree)
                    w.value(static_cast<std::uint64_t>(a.fp));
            }
            w.endArray();
            w.key("artifacts").beginArray();
            for (const auto &p : r.artifacts)
                w.value(p);
            w.endArray();
            w.endObject();
        }};
}

} // namespace xfd::oracle
