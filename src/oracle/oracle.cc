#include "oracle/oracle.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "pm/delta.hh"
#include "trace/runtime.hh"

namespace xfd::oracle
{

CrashStateOracle::CrashStateOracle(const trace::TraceBuffer &p,
                                   const pm::PmImage &initial,
                                   const OracleConfig &c)
    : pre(p), cfg(c), gran(c.detector.granularity),
      eadr(c.detector.eadrOn()),
      execPool(initial.size(), initial.base()), working(initial),
      durable(initial)
{
    if (gran == 0 || (gran & (gran - 1)) != 0 || gran > cacheLineSize)
        fatal("oracle granularity must be a power of two <= 64");
    // 2^frontier subsets are enumerated below the limit; keep the
    // shift well-defined.
    cfg.frontierLimit = std::min<std::size_t>(cfg.frontierLimit, 20);
    execPool.enableDirtyTracking(restorePageSize);
}

std::uint64_t
CrashStateOracle::cellIndex(Addr a) const
{
    return (a - durable.base()) / gran;
}

std::uint64_t
CrashStateOracle::cellCount(Addr a, std::size_t n) const
{
    Addr first = a / gran;
    Addr last = (a + n - 1) / gran;
    return last - first + 1;
}

Addr
CrashStateOracle::cellAddr(std::uint64_t idx) const
{
    return durable.base() + idx * gran;
}

void
CrashStateOracle::persistCellBytes(std::uint64_t idx)
{
    Addr a = cellAddr(idx);
    std::size_t off = a - working.base();
    durable.applyWrite(a, working.data() + off, gran);
    std::uint32_t page =
        static_cast<std::uint32_t>(off / restorePageSize);
    durableDirty.insert(page);
    std::uint32_t lastPage = static_cast<std::uint32_t>(
        (off + gran - 1) / restorePageSize);
    if (lastPage != page)
        durableDirty.insert(lastPage);
}

void
CrashStateOracle::advance(std::uint32_t to)
{
    using trace::Op;

    for (; cursor < to; cursor++) {
        const auto &e = pre[cursor];
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite: {
            working.applyWrite(e.addr, e.data.data(), e.data.size());
            if (e.has(trace::flagImageOnly)) {
                // Allocator zero-fill and friends: image data with no
                // persistence semantics. Both images take it at once,
                // so it is never part of any frontier.
                durable.applyWrite(e.addr, e.data.data(),
                                   e.data.size());
                if (!e.data.empty()) {
                    std::size_t off = e.addr - durable.base();
                    for (std::size_t p = off / restorePageSize;
                         p <= (off + e.data.size() - 1) /
                                  restorePageSize;
                         p++) {
                        durableDirty.insert(
                            static_cast<std::uint32_t>(p));
                    }
                }
                break;
            }
            if (e.size == 0)
                break;
            bool nt = e.op == Op::NtWrite;
            std::uint64_t first = cellIndex(e.addr);
            std::uint64_t count = cellCount(e.addr, e.size);
            for (std::uint64_t i = 0; i < count; i++) {
                OCell &c = cells[first + i];
                if (eadr) {
                    // Flush-free: durable on arrival. The tail stays
                    // empty, so the cell never joins a frontier and
                    // its bytes land in the durable image at once.
                    c.state = CellState::Persisted;
                    c.touched = true;
                    c.uninit = false;
                    c.tlast = ts;
                    c.tail.clear();
                    persistCellBytes(first + i);
                    continue;
                }
                c.state = nt ? CellState::Pending
                             : CellState::Modified;
                c.touched = true;
                c.uninit = false;
                c.tlast = ts;
                c.tail.push_back(e.seq);
                if (nt)
                    pending.push_back(first + i);
            }
            // A write overlapping a commit variable is a commit write:
            // it versions the variable's consistency window.
            for (auto &cv : cvars) {
                if (cv.var.overlaps({e.addr, e.addr + e.size})) {
                    cv.tprelast = cv.tlast;
                    cv.tlast = ts;
                }
            }
            break;
          }
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush: {
            // Writeback starts for every modified cell in the line;
            // durability lands at the next fence. Flush-free model:
            // nothing to start, everything is already durable.
            if (eadr)
                break;
            std::uint64_t first = cellIndex(e.addr);
            std::uint64_t count = cellCount(e.addr, cacheLineSize);
            for (std::uint64_t i = 0; i < count; i++) {
                auto it = cells.find(first + i);
                if (it == cells.end() ||
                    it->second.state != CellState::Modified) {
                    continue;
                }
                it->second.state = CellState::Pending;
                pending.push_back(first + i);
            }
            break;
          }
          case Op::Sfence:
          case Op::Mfence: {
            // The fence retires cells still pending (a cached write
            // after the flush keeps the cell in flight). Their bytes
            // become part of the durable image and their tails empty:
            // nothing about them is undecided at a crash any more.
            for (std::uint64_t idx : pending) {
                auto it = cells.find(idx);
                if (it == cells.end() ||
                    it->second.state != CellState::Pending) {
                    continue;
                }
                it->second.state = CellState::Persisted;
                persistCellBytes(idx);
                it->second.tail.clear();
            }
            pending.clear();
            ts++;
            break;
          }
          case Op::Alloc: {
            std::uint64_t first = cellIndex(e.addr);
            std::uint64_t count = cellCount(e.addr, e.size);
            for (std::uint64_t i = 0; i < count; i++) {
                OCell &c = cells[first + i];
                c.state = CellState::Modified;
                c.touched = true;
                c.uninit = true;
                c.tlast = ts;
            }
            break;
          }
          case Op::Free: {
            std::uint64_t first = cellIndex(e.addr);
            std::uint64_t count = cellCount(e.addr, e.size);
            for (std::uint64_t i = 0; i < count; i++) {
                auto it = cells.find(first + i);
                if (it == cells.end())
                    continue;
                // Freed cells leave the frontier; pin their bytes at
                // the last written value so the all-updates candidate
                // stays byte-identical to the detector's image.
                if (!it->second.tail.empty())
                    persistCellBytes(first + i);
                cells.erase(it);
            }
            break;
          }
          case Op::CommitVar:
            registerVar(cvars, e.addr, e.size);
            break;
          case Op::CommitRange:
            registerRange(cvars, e.aux, e.addr, e.size);
            break;
          default:
            break;
        }
    }
}

std::vector<FrontierEvent>
CrashStateOracle::collectFrontier() const
{
    std::set<std::uint32_t> seqs;
    for (const auto &[idx, c] : cells) {
        for (std::uint32_t s : c.tail)
            seqs.insert(s);
    }
    std::vector<FrontierEvent> frontier;
    frontier.reserve(seqs.size());
    for (std::uint32_t s : seqs) {
        const auto &e = pre[s];
        frontier.push_back(FrontierEvent{s, e.addr, e.size});
    }
    return frontier;
}

trace::CandidateSet
CrashStateOracle::buildCandidateSet(
    std::vector<FrontierEvent> frontier,
    const std::map<std::uint32_t, std::size_t> &bitOf) const
{
    std::vector<std::vector<std::size_t>> chains;
    for (const auto &[idx, c] : cells) {
        if (c.tail.empty())
            continue;
        std::vector<std::size_t> chain;
        chain.reserve(c.tail.size());
        for (std::uint32_t s : c.tail)
            chain.push_back(bitOf.at(s));
        chains.push_back(std::move(chain));
    }
    return trace::CandidateSet(std::move(frontier),
                               std::move(chains));
}

void
CrashStateOracle::restoreExecPool()
{
    pm::DeltaRestoreStats st;
    if (!poolSynced) {
        pm::restoreFull(durable, execPool, st);
        execPool.clearDirtyPages();
        durableDirty.clear();
        poolSynced = true;
    } else {
        // The pool matches the durable image as of the last restore
        // except on pages the image gained since (durableDirty) and
        // pages the previous candidate soiled (mask application +
        // recovery writes). Copy exactly that union.
        std::set<std::uint32_t> pages;
        pages.swap(durableDirty);
        execPool.drainDirtyPages(pages);
        pm::restorePages(durable, execPool, restorePageSize, pages,
                         st);
    }
    static const bool validate =
        std::getenv("XFD_ORACLE_VALIDATE") != nullptr;
    if (validate && std::memcmp(durable.data(), execPool.data(),
                                durable.size()) != 0) {
        std::size_t off = 0;
        while (durable.data()[off] == execPool.data()[off])
            off++;
        panic("oracle delta restore diverged at pool offset %#zx "
              "(page %zu)",
              off, off / restorePageSize);
    }
}

void
CrashStateOracle::applyMask(
    const std::vector<FrontierEvent> &frontier,
    const trace::SubsetMask &mask,
    const std::map<std::uint32_t, std::size_t> &bitOf)
{
    (void)bitOf;
    // Ascending seq order: a later applied event overwrites an earlier
    // one where they overlap, as the caches would.
    for (std::size_t b = 0; b < frontier.size(); b++) {
        if (!mask.test(b))
            continue;
        const auto &e = pre[frontier[b].seq];
        if (e.size == 0)
            continue;
        if (e.data.empty()) {
            // Payload-elided same-value write (flagSameValue): the
            // bytes it would land equal the image content at emit
            // time, so there is nothing to materialize.
            continue;
        }
        std::uint64_t first = cellIndex(e.addr);
        std::uint64_t count = cellCount(e.addr, e.size);
        for (std::uint64_t i = 0; i < count; i++) {
            std::uint64_t idx = first + i;
            auto it = cells.find(idx);
            if (it == cells.end())
                continue;
            // Only cells still carrying the event are undecided; a
            // cell that retired it after a later flush+fence already
            // has its bytes (and possibly newer ones) in durable.
            const auto &tail = it->second.tail;
            if (std::find(tail.begin(), tail.end(), e.seq) ==
                tail.end()) {
                continue;
            }
            Addr lo = std::max(cellAddr(idx), e.addr);
            Addr hi = std::min(cellAddr(idx) + gran,
                               e.addr + e.size);
            if (lo >= hi)
                continue;
            std::size_t n = hi - lo;
            std::memcpy(execPool.data() + (lo - execPool.base()),
                        e.data.data() + (lo - e.addr), n);
            execPool.markDirty(lo, n);
        }
    }
}

std::set<core::BugType>
CrashStateOracle::runCandidate(const core::ProgramFn &post,
                               bool suppressSemantic)
{
    using trace::Op;

    nCandidates++;
    std::set<core::BugType> classes;
    trace::TraceBuffer postTrace;
    {
        trace::PmRuntime rt(execPool, postTrace,
                            trace::Stage::PostFailure);
        rt.setEntryCap(1u << 20);
        try {
            post(rt);
        } catch (const trace::StageComplete &) {
        } catch (const trace::PostFailureAbort &) {
            classes.insert(core::BugType::RecoveryFailure);
        } catch (const pm::BadPmAccess &) {
            classes.insert(core::BugType::RecoveryFailure);
        }
    }

    // Classify the recovery's reads against the oracle cells, with
    // candidate-scoped overwrite/first-read marks and commit clocks.
    std::map<std::uint64_t, std::uint8_t> pflags;
    std::vector<OCommitVar> scoped = cvars;
    for (const auto &e : postTrace) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
          case Op::Alloc: {
            if (e.size == 0)
                break;
            std::uint64_t first = cellIndex(e.addr);
            std::uint64_t count = cellCount(e.addr, e.size);
            for (std::uint64_t i = 0; i < count; i++)
                pflags[first + i] |= 1; // overwritten
            break;
          }
          case Op::CommitVar:
            registerVar(scoped, e.addr, e.size);
            break;
          case Op::CommitRange:
            registerRange(scoped, e.aux, e.addr, e.size);
            break;
          case Op::Read: {
            if (!e.has(trace::flagInRoi) ||
                e.has(trace::flagInternal) ||
                e.has(trace::flagSkipDetection)) {
                break;
            }
            int v = classifyRead(e.addr, e.size, pflags, scoped);
            if (v == 1) {
                classes.insert(core::BugType::CrossFailureRace);
            } else if (v == 2 && !cfg.detector.crashImageMode &&
                       !suppressSemantic) {
                // Mirrors the driver: the commit-window verdict
                // assumes the all-updates image (and, per candidate,
                // that no commit write was dropped).
                classes.insert(core::BugType::CrossFailureSemantic);
            }
            break;
          }
          default:
            break;
        }
    }
    return classes;
}

int
CrashStateOracle::classifyRead(
    Addr a, std::size_t n,
    std::map<std::uint64_t, std::uint8_t> &pflags,
    const std::vector<OCommitVar> &vars) const
{
    if (n == 0)
        return 0;
    int verdict = 0; // 0 = ok/benign, 1 = race, 2 = semantic
    std::uint64_t first = cellIndex(a);
    std::uint64_t count = cellCount(a, n);
    for (std::uint64_t i = 0; i < count; i++) {
        std::uint64_t idx = first + i;
        Addr ca = cellAddr(idx);

        // Reading a commit variable is the benign cross-failure race.
        if (isCommitVarAddr(ca, vars))
            continue;

        std::uint8_t &f = pflags[idx];
        if (f & 1) // overwritten by recovery before this read
            continue;
        if (cfg.detector.firstReadOnly && (f & 2))
            continue;
        f |= 2; // checked

        auto it = cells.find(idx);
        if (it == cells.end() || !it->second.touched)
            continue; // untouched pre-failure: initial data
        if (verdict != 0)
            continue; // first offending cell decides; keep marking

        const OCell &c = it->second;
        if (c.uninit) {
            verdict = 1;
            continue;
        }
        const OCommitVar *var = coveringVar(ca, vars);
        bool consistent = var && var->tprelast <= c.tlast &&
                          c.tlast < var->tlast;
        bool persisted = c.tail.empty();
        if (consistent &&
            !(cfg.detector.strictPersistCheck && !persisted)) {
            continue;
        }
        if (!persisted) {
            verdict = 1;
            continue;
        }
        if (var)
            verdict = 2;
    }
    return verdict;
}

const CrashStateOracle::OCommitVar *
CrashStateOracle::coveringVar(Addr a,
                              const std::vector<OCommitVar> &vars)
    const
{
    for (const auto &cv : vars) {
        for (const auto &r : cv.ranges) {
            if (r.contains(a))
                return &cv;
        }
    }
    // A single commit variable with no registered ranges covers all
    // PM locations.
    if (vars.size() == 1 && vars.front().ranges.empty())
        return &vars.front();
    return nullptr;
}

bool
CrashStateOracle::isCommitVarAddr(
    Addr a, const std::vector<OCommitVar> &vars) const
{
    for (const auto &cv : vars) {
        if (cv.var.contains(a))
            return true;
    }
    return false;
}

void
CrashStateOracle::registerVar(std::vector<OCommitVar> &vars, Addr a,
                              std::size_t n)
{
    AddrRange r{a, a + n};
    for (const auto &cv : vars) {
        if (cv.var == r)
            return;
    }
    vars.push_back(OCommitVar{r, {}, -1, -1});
}

void
CrashStateOracle::registerRange(std::vector<OCommitVar> &vars,
                                Addr cv_addr, Addr a, std::size_t n)
{
    for (auto &cv : vars) {
        if (!cv.var.contains(cv_addr))
            continue;
        AddrRange r{a, a + n};
        for (const auto &existing : cv.ranges) {
            if (existing == r)
                return;
        }
        cv.ranges.push_back(r);
        return;
    }
}

FpOracleResult
CrashStateOracle::runFailurePoint(
    std::uint32_t fp, const core::ProgramFn &post,
    const std::vector<trace::SubsetMask> *extraMasks,
    const std::uint64_t *stream)
{
    if (fp < cursor) {
        panic("oracle failure points must be fed in ascending order "
              "(got %u after %u)",
              fp, cursor);
    }
    advance(fp);

    FpOracleResult res;
    res.fp = fp;
    res.frontier = collectFrontier();
    std::size_t k = res.frontier.size();
    std::map<std::uint32_t, std::size_t> bitOf;
    for (std::size_t b = 0; b < k; b++)
        bitOf[res.frontier[b].seq] = b;

    trace::CandidateSet cset = buildCandidateSet(res.frontier, bitOf);
    trace::CandidateSet::EnumerateOptions eopt;
    eopt.exhaustive = cfg.exhaustive;
    eopt.frontierLimit = cfg.frontierLimit;
    eopt.sampleCount = cfg.sampleCount;
    eopt.seed = cfg.seed;
    eopt.stream = stream ? *stream : fp;
    auto en = cset.enumerate(eopt);
    std::vector<trace::SubsetMask> masks = std::move(en.masks);
    res.sampled = en.sampled;

    if (extraMasks) {
        // Detector-explored candidates the enumeration above missed
        // (different knobs or a different sampler stream): classify
        // them too, after repairing to legality.
        std::set<trace::SubsetMask> have(masks.begin(), masks.end());
        for (const auto &m : *extraMasks) {
            if (m.size() != k)
                continue;
            trace::SubsetMask cand = m;
            cset.repair(cand);
            if (have.insert(cand).second)
                masks.push_back(std::move(cand));
        }
    }
    res.statesLegal = masks.size();

    res.candidates.reserve(masks.size());
    for (const auto &m : masks) {
        restoreExecPool();
        applyMask(res.frontier, m, bitOf);
        bool droppedCommit = false;
        for (std::size_t b = 0; b < k && !droppedCommit; b++) {
            if (m.test(b))
                continue;
            AddrRange ev{res.frontier[b].addr,
                         res.frontier[b].addr + res.frontier[b].size};
            for (const auto &cv : cvars) {
                if (cv.var.overlaps(ev)) {
                    droppedCommit = true;
                    break;
                }
            }
        }
        CandidateOutcome out;
        out.mask = m;
        out.classes = runCandidate(post, droppedCommit);
        res.candidates.push_back(std::move(out));
    }
    return res;
}

bool
parseOracleMode(const std::string &mode, bool &exhaustive,
                std::size_t &sampleCount, std::string *err)
{
    if (mode == "exhaustive") {
        exhaustive = true;
        return true;
    }
    if (mode == "sample") {
        exhaustive = false;
        return true;
    }
    if (mode.rfind("sample:", 0) == 0) {
        const std::string arg = mode.substr(7);
        char *end = nullptr;
        unsigned long n = std::strtoul(arg.c_str(), &end, 10);
        if (!arg.empty() && end && *end == '\0' && n > 0) {
            exhaustive = false;
            sampleCount = n;
            return true;
        }
    }
    if (err) {
        *err = "bad oracle mode \"" + mode +
               "\" (want exhaustive or sample:<n>)";
    }
    return false;
}

} // namespace xfd::oracle
