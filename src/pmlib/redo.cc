#include "pmlib/redo.hh"

#include <cstring>

#include "common/logging.hh"

namespace xfd::pmlib
{

RedoTx::RedoTx(ObjPool &p, Addr area_addr, trace::SrcLoc loc)
    : pool(p), areaAddr(area_addr)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "redo_begin", loc);
    RedoArea *a = area();
    // A fresh transaction must not inherit a sealed log: recovery has
    // to run first (ObjPool users call RedoTx::recover on open).
    if (rt.load(a->sealedCount, loc) != 0)
        panic("redo area has a sealed log; run recover() first");
}

RedoTx::~RedoTx()
{
    if (!finished)
        abort();
}

RedoArea *
RedoTx::area()
{
    return static_cast<RedoArea *>(
        pool.pm().toHost(areaAddr, sizeof(RedoArea)));
}

void
RedoTx::stage(void *dst, const void *src, std::size_t n,
              trace::SrcLoc loc)
{
    if (finished)
        panic("stage() on a finished redo transaction");
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    Addr daddr = pm.toAddr(dst);

    trace::LibScope lib(rt, "redo_stage", loc);
    RedoArea *a = area();
    std::size_t off = 0;
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    while (off < n) {
        std::size_t chunk = std::min(n - off, redoEntryCapacity);
        if (staged >= redoMaxEntries)
            panic("redo log full (%u entries)", staged);
        RedoEntry &e = a->entries[staged];
        rt.store(e.addr, static_cast<std::uint64_t>(daddr + off), loc);
        rt.store(e.size, static_cast<std::uint64_t>(chunk), loc);
        rt.copyToPm(e.data, bytes + off, chunk, loc);
        rt.persistBarrier(&e, sizeof(RedoEntry), loc);
        staged++;
        off += chunk;
    }
}

void
RedoTx::commit(trace::SrcLoc loc)
{
    if (finished)
        return;
    finished = true;
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    trace::LibScope lib(rt, "redo_commit", loc);
    RedoArea *a = area();

    // Seal: persisting the count is the commit point.
    rt.store(a->sealedCount, staged, loc);
    rt.persistBarrier(&a->sealedCount, sizeof(a->sealedCount), loc);

    // Apply home and retire. A failure anywhere in here re-applies
    // the sealed log on recovery (idempotent writes).
    for (std::uint32_t i = 0; i < staged; i++) {
        std::uint64_t daddr = rt.load(a->entries[i].addr, loc);
        std::uint64_t sz = rt.load(a->entries[i].size, loc);
        rt.copyToPm(pm.toHost(daddr, sz), a->entries[i].data, sz, loc);
        rt.persistBarrier(pm.toHost(daddr, sz), sz, loc);
    }
    rt.store(a->sealedCount, 0u, loc);
    rt.persistBarrier(&a->sealedCount, sizeof(a->sealedCount), loc);
}

void
RedoTx::abort(trace::SrcLoc loc)
{
    if (finished)
        return;
    finished = true;
    // Nothing reached the home locations; the unsealed log is dead.
    (void)loc;
    staged = 0;
}

void
RedoTx::recover(ObjPool &pool, Addr area_addr, trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    trace::LibScope lib(rt, "redo_recover", loc);
    auto *a = static_cast<RedoArea *>(
        pm.toHost(area_addr, sizeof(RedoArea)));

    // The sealed count is the log's commit variable: reading it after
    // a failure is the benign cross-failure race.
    std::uint32_t sealed = rt.load(a->sealedCount, loc);
    if (sealed == 0)
        return; // unsealed or empty: existing data is consistent
    if (sealed > redoMaxEntries) {
        throw trace::PostFailureAbort{
            "redo recovery: corrupted sealed count", loc};
    }
    for (std::uint32_t i = 0; i < sealed; i++) {
        std::uint64_t daddr = rt.load(a->entries[i].addr, loc);
        std::uint64_t sz = rt.load(a->entries[i].size, loc);
        if (sz > redoEntryCapacity) {
            throw trace::PostFailureAbort{
                "redo recovery: corrupted entry size", loc};
        }
        rt.copyToPm(pm.toHost(daddr, sz), a->entries[i].data, sz, loc);
        rt.persistBarrier(pm.toHost(daddr, sz), sz, loc);
    }
    rt.store(a->sealedCount, 0u, loc);
    rt.persistBarrier(&a->sealedCount, sizeof(a->sealedCount), loc);
}

} // namespace xfd::pmlib
