#include "pmlib/oplog.hh"

#include "common/logging.hh"

namespace xfd::pmlib
{

OpLog::OpLog(ObjPool &p, Addr area_addr) : pool(p), areaAddr(area_addr)
{
}

OpLogArea *
OpLog::area()
{
    return static_cast<OpLogArea *>(
        pool.pm().toHost(areaAddr, sizeof(OpLogArea)));
}

void
OpLog::format(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "oplog_format", loc);
    OpLogArea *a = area();
    rt.store(a->committed, std::uint64_t{0}, loc);
    rt.store(a->applied, std::uint64_t{0}, loc);
    rt.persistBarrier(a, 16, loc);
}

void
OpLog::append(const LoggedOp &op, trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "oplog_append", loc);
    OpLogArea *a = area();
    std::uint64_t n = rt.load(a->committed, loc);
    std::uint64_t slot = n % opLogMaxEntries;
    std::uint64_t applied = rt.load(a->applied, loc);
    if (n - applied >= opLogMaxEntries)
        panic("operation log full");
    rt.store(a->ops[slot].opcode, op.opcode, loc);
    rt.store(a->ops[slot].arg0, op.arg0, loc);
    rt.store(a->ops[slot].arg1, op.arg1, loc);
    rt.persistBarrier(&a->ops[slot], sizeof(LoggedOp), loc);
    // Commit write: the operation is now durable.
    rt.store(a->committed, n + 1, loc);
    rt.persistBarrier(&a->committed, sizeof(a->committed), loc);
}

void
OpLog::markApplied(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "oplog_mark_applied", loc);
    OpLogArea *a = area();
    rt.store(a->applied, rt.load(a->committed, loc), loc);
    rt.persistBarrier(&a->applied, sizeof(a->applied), loc);
}

void
OpLog::replay(const std::function<void(const LoggedOp &)> &execute,
              trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    OpLogArea *a = area();
    // Benign commit-variable reads pick the replay window.
    std::uint64_t committed;
    std::uint64_t applied;
    {
        trace::LibScope lib(rt, "oplog_replay", loc);
        committed = rt.load(a->committed, loc);
        applied = rt.load(a->applied, loc);
    }
    if (committed < applied || committed - applied > opLogMaxEntries) {
        throw trace::PostFailureAbort{
            "oplog recovery: corrupted committed/applied counts", loc};
    }
    for (std::uint64_t i = applied; i < committed; i++) {
        LoggedOp op;
        {
            trace::LibScope lib(rt, "oplog_fetch", loc);
            std::uint64_t slot = i % opLogMaxEntries;
            op.opcode = rt.load(a->ops[slot].opcode, loc);
            op.arg0 = rt.load(a->ops[slot].arg0, loc);
            op.arg1 = rt.load(a->ops[slot].arg1, loc);
        }
        // The handler runs as ordinary (detectable) recovery code.
        execute(op);
    }
    markApplied(loc);
}

std::uint64_t
OpLog::committedCount(trace::SrcLoc loc)
{
    trace::LibScope lib(pool.runtime(), "oplog_count", loc);
    return pool.runtime().load(area()->committed, loc);
}

std::uint64_t
OpLog::pendingCount(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "oplog_pending", loc);
    OpLogArea *a = area();
    return rt.load(a->committed, loc) - rt.load(a->applied, loc);
}

} // namespace xfd::pmlib
