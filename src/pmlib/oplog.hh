/**
 * @file
 * Operational logging (paper Table 1, row "Operational logging"):
 * operations — not data — are logged before execution; after a
 * failure, recovery re-executes the committed operations to overwrite
 * whatever an interrupted operation left behind ("Logged operations
 * are consistent.").
 *
 * The committed-count field is the commit variable; operations must
 * be idempotent (recovery may re-execute ones that completed).
 */

#ifndef XFD_PMLIB_OPLOG_HH
#define XFD_PMLIB_OPLOG_HH

#include <functional>

#include "pmlib/objpool.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** One logged operation: an opcode and two operands. */
struct LoggedOp
{
    std::uint64_t opcode;
    std::uint64_t arg0;
    std::uint64_t arg1;
};

constexpr std::size_t opLogMaxEntries = 256;

/** Persistent operation log. */
struct OpLogArea
{
    /** Operations committed (appended and persisted). */
    std::uint64_t committed;
    /** Operations whose effects are fully persisted (truncate mark). */
    std::uint64_t applied;
    LoggedOp ops[opLogMaxEntries];
};

/** Append/replay interface over an OpLogArea in the pool. */
class OpLog
{
  public:
    OpLog(ObjPool &pool, Addr area_addr);

    static constexpr std::size_t areaSize() { return sizeof(OpLogArea); }

    /** Zero-initialize the log. */
    void format(trace::SrcLoc loc = trace::here());

    /**
     * Log an operation (persisted, then committed) *before* its
     * effects are applied to the data structures.
     */
    void append(const LoggedOp &op, trace::SrcLoc loc = trace::here());

    /**
     * Mark every committed operation's effects as fully persisted;
     * recovery will not re-execute them.
     */
    void markApplied(trace::SrcLoc loc = trace::here());

    /**
     * Recovery: re-execute each committed-but-not-applied operation
     * through @p execute, then mark the log applied.
     */
    void replay(const std::function<void(const LoggedOp &)> &execute,
                trace::SrcLoc loc = trace::here());

    /** Committed operation count (benign commit-variable read). */
    std::uint64_t committedCount(trace::SrcLoc loc = trace::here());

    /** Pending (committed - applied) operation count. */
    std::uint64_t pendingCount(trace::SrcLoc loc = trace::here());

  private:
    OpLogArea *area();

    ObjPool &pool;
    Addr areaAddr;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_OPLOG_HH
