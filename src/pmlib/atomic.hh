/**
 * @file
 * Failure-atomic single-field update — the building block PMDK's
 * "atomic" API (POBJ_LIST_INSERT, pmemobj_list_*) provides via an
 * internal redo log. Either the old or the new, persisted value is
 * ever observable after a failure, so the publish window is excluded
 * from failure injection (the library guarantees it, exactly as the
 * paper trusts PMDK internals at function granularity).
 */

#ifndef XFD_PMLIB_ATOMIC_HH
#define XFD_PMLIB_ATOMIC_HH

#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** Atomically (w.r.t. failure) store and persist one field. */
template <typename T>
void
atomicStore(trace::PmRuntime &rt, T &field, const T &value,
            trace::SrcLoc loc = trace::here())
{
    trace::LibScope lib(rt, "atomic_store", loc);
    trace::SkipFailureScope atomic(rt, loc);
    rt.store(field, value, loc);
    rt.persistBarrier(&field, sizeof(T), loc);
}

} // namespace xfd::pmlib

#endif // XFD_PMLIB_ATOMIC_HH
