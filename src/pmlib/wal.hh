/**
 * @file
 * Redo-only write-ahead log — the third crash-consistency mechanism
 * next to the undo-log transaction (pmlib/tx) and the redo
 * micro-log (pmlib/redo).
 *
 * The log is a flat byte arena of CRC32-framed records. Writers stage
 * full-page after-images with append() — plain stores, no ordering —
 * and make a whole batch durable with one commit() (group commit):
 *
 *   payload writeback + fence;  headOff := stagedEnd + fence (seal);
 *   apply each record to its home page + fence.
 *
 * Persisting headOff is the commit point: recovery replays exactly
 * the records below it, so a failure anywhere re-applies the sealed
 * prefix (idempotent full-page writes) and discards the unsealed
 * tail. checkpoint() bounds replay work: once every sealed record is
 * durable in place it advances an alternating-slot descriptor
 * (pmlib/checkpoint.hh's generation idiom) and truncates the log.
 *
 * Home pages are owned by the log: registerPage() allocates them and
 * records their addresses in a persistent page table, so recovery can
 * chase pageId -> address without the caller's volatile state.
 *
 * The WalOptions flags plant the wal.* bug-suite defects; all default
 * to off (the correct protocol).
 */

#ifndef XFD_PMLIB_WAL_HH
#define XFD_PMLIB_WAL_HH

#include <cstdint>
#include <vector>

#include "pmlib/objpool.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** "XFDWAL1\0", little-endian. */
constexpr std::uint64_t walMagic = 0x00314c4157444658ull;

/**
 * CRC32 (reflected, poly 0xEDB88320 — the zlib/PMDK polynomial),
 * bitwise so it needs no table. Exposed for tests that forge or
 * corrupt frames.
 */
inline std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed = 0)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i < n; i++) {
        c ^= p[i];
        for (int b = 0; b < 8; b++)
            c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
    }
    return ~c;
}

/** Persistent log header (start of the WAL area). */
struct WalHeader
{
    std::uint64_t magic;
    /** Committed log bytes — the log's commit variable. */
    std::uint64_t headOff;
    /** Checkpoint generation — selects the live descriptor slot. */
    std::uint64_t ckptGen;
    /** Alternating descriptor slots: last checkpointed LSN. */
    std::uint64_t ckptLsn[2];
};

/** Frame header preceding each record's payload in the log. */
struct WalRecordHeader
{
    std::uint64_t lsn;    ///< 1-based; 0 never occurs in a valid frame
    std::uint64_t pageId; ///< home page the payload re-images
    std::uint32_t dataLen;
    std::uint32_t crc; ///< walRecordCrc() over the fields + payload
};

/** The checksum a well-formed frame must carry. */
inline std::uint32_t
walRecordCrc(std::uint64_t lsn, std::uint64_t page_id,
             const void *data, std::uint32_t len)
{
    std::uint32_t c = crc32(&lsn, sizeof(lsn));
    c = crc32(&page_id, sizeof(page_id), c);
    c = crc32(&len, sizeof(len), c);
    return crc32(data, len, c);
}

/** Planted-defect switches for the wal.* bug-suite family. */
struct WalOptions
{
    /** append() seals each record before its payload is written back. */
    bool tornRecordAccepted = false;
    /** commit() persists the seal before the batch payload. */
    bool commitBeforePayload = false;
    /** recover() scans raw frames, ignoring headOff and the CRC. */
    bool missingCrcCheck = false;
    /** commit() skips home writeback; checkpoint() truncates anyway. */
    bool truncateBeforeApply = false;
    /** recover() reads the dead descriptor slot. */
    bool replayPastCheckpoint = false;
    /** commit() leaves the first record of the batch out of the
        payload writeback range. */
    bool unflushedLogHead = false;
};

/**
 * One write-ahead log instance over an area inside an ObjPool.
 *
 * The handle itself is volatile (one per execution stage). A fresh
 * area is initialized with format(); after a failure, recover()
 * replays the sealed log and rebuilds the volatile cursors. Both
 * stages must call annotate() before any post-failure-visible reads
 * so the detector knows headOff/ckptGen are commit variables.
 */
class Wal
{
  public:
    /**
     * @param pool pool the area lives in
     * @param area_addr PM address of an areaSize() byte region
     * @param log_capacity log arena bytes
     * @param page_size fixed home-page (and record payload) size
     * @param max_pages page-table capacity
     */
    Wal(ObjPool &pool, Addr area_addr, std::size_t log_capacity,
        std::size_t page_size, std::size_t max_pages,
        WalOptions opts = {});

    /** Area bytes: header + page table + log arena. */
    static std::size_t
    areaSize(std::size_t log_capacity, std::size_t max_pages)
    {
        return sizeof(WalHeader) + max_pages * sizeof(std::uint64_t) +
               log_capacity;
    }

    /** Initialize a fresh area (magic is persisted last). */
    void format(trace::SrcLoc loc = trace::here());

    /** Register headOff/ckptGen as commit variables. */
    void annotate(trace::SrcLoc loc = trace::here());

    /**
     * Allocate a home page and persist-stage its page-table entry
     * (made durable by the next commit()). @return the page address.
     */
    Addr registerPage(std::uint64_t page_id,
                      trace::SrcLoc loc = trace::here());

    /** Traced page-table lookup. @return 0 for an unregistered page. */
    Addr pageAddr(std::uint64_t page_id,
                  trace::SrcLoc loc = trace::here());

    /** Stage one full-page after-image (no ordering until commit). */
    void append(std::uint64_t page_id, const void *img,
                trace::SrcLoc loc = trace::here());

    /** Group commit: seal the staged batch and apply it in place. */
    void commit(trace::SrcLoc loc = trace::here());

    /** Advance the descriptor and truncate the applied log. */
    void checkpoint(trace::SrcLoc loc = trace::here());

    /**
     * Post-failure replay. Walks the sealed log, validates each frame
     * (torn or corrupt frames throw trace::PostFailureAbort), applies
     * records above the checkpointed LSN to their home pages, and
     * rebuilds the volatile cursors.
     *
     * Deliberately *not* LibScope-wrapped: its reads are the
     * cross-failure reads the detector classifies.
     *
     * @return false when the area holds no formatted log (failure
     *         before creation finished) — nothing to replay.
     */
    bool recover(trace::SrcLoc loc = trace::here());

    /** Highest LSN made durable by a commit (0 before the first). */
    std::uint64_t lastCommittedLsn() const { return lastLsn; }

    /** LSN the next append() will frame. */
    std::uint64_t nextLsn() const { return nextLsn_; }

    /** Committed log bytes (mirror of the persistent headOff). */
    std::uint64_t committedBytes() const { return committedEnd; }

    /** Staged-but-unsealed log bytes past committedBytes(). */
    std::uint64_t stagedBytes() const { return stagedEnd; }

    /** Checkpoint generation (mirror). */
    std::uint64_t generation() const { return gen; }

    /** Records applied by the last recover(). */
    std::uint64_t recordsReplayed() const { return replayed; }

    /** Bytes one record with @p data_len payload occupies. */
    static std::size_t
    frameSize(std::uint32_t data_len)
    {
        return sizeof(WalRecordHeader) + ((data_len + 7u) & ~7u);
    }

    Addr headerAddr() const { return areaAddr; }
    Addr tableAddr() const { return areaAddr + sizeof(WalHeader); }
    Addr logAddr() const
    {
        return tableAddr() + maxPages * sizeof(std::uint64_t);
    }

  private:
    WalHeader *hdr();
    std::uint64_t *table();
    std::uint8_t *log();

    /** One staged record awaiting commit (volatile bookkeeping). */
    struct Staged
    {
        std::uint64_t off;
        std::uint64_t pageId;
        std::uint32_t len;
    };

    ObjPool &pool;
    Addr areaAddr;
    std::size_t logCapacity;
    std::size_t pageSize;
    std::size_t maxPages;
    WalOptions opts;

    std::uint64_t nextLsn_ = 1;
    std::uint64_t lastLsn = 0;
    std::uint64_t gen = 0;
    std::uint64_t describedLsn = 0;
    std::uint64_t committedEnd = 0;
    std::uint64_t stagedEnd = 0;
    std::uint64_t replayed = 0;
    std::vector<Staged> staged;
    std::vector<std::uint64_t> dirtyTable;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_WAL_HH
