/**
 * @file
 * Undo-log transactions — the libpmemobj TX_BEGIN/TX_ADD/TX_END
 * equivalent (Table 1, row "Undo logging").
 *
 * Protocol: TX_ADD snapshots the old contents of a range into the
 * persistent undo log *before* the caller overwrites it in place; the
 * log's `active` flag is its commit variable. Commit flushes every
 * snapshotted range and then clears `active`; recovery (ObjPool::open)
 * rolls the snapshots back when `active` is still set.
 *
 * All internals run under LibScope, so the detector traces them at
 * function granularity (§5.3) and skips detection inside — only the
 * TX_ADD annotation itself is emitted at the caller's location, which
 * is what enables duplicate-TX_ADD performance-bug reporting.
 */

#ifndef XFD_PMLIB_TX_HH
#define XFD_PMLIB_TX_HH

#include "pmlib/objpool.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** An open undo-log transaction (single-threaded, nestable). */
class Tx
{
  public:
    /** TX_BEGIN. Nested transactions flatten into the outermost. */
    explicit Tx(ObjPool &pool, trace::SrcLoc loc = trace::here());

    /** Aborts (rolls back) if neither commit() nor abort() ran. */
    ~Tx();

    Tx(const Tx &) = delete;
    Tx &operator=(const Tx &) = delete;

    /** TX_ADD of one field: snapshot it before modifying it. */
    template <typename T>
    void
    add(T &field, trace::SrcLoc loc = trace::here())
    {
        addRange(&field, sizeof(T), loc);
    }

    /**
     * TX_ADD of an arbitrary range. As with PMDK's
     * pmemobj_tx_add_range(), a range already covered by an earlier
     * snapshot in this transaction is silently skipped.
     */
    void addRange(void *p, std::size_t n, trace::SrcLoc loc = trace::here());

    /**
     * TX_ADD without the already-covered check — the wasteful call
     * XFDetector reports as a duplicated-TX_ADD performance bug.
     * Exists so the synthetic bug suite can inject that waste.
     */
    void addRangeUnchecked(void *p, std::size_t n,
                           trace::SrcLoc loc = trace::here());

    /** Field form of addRangeUnchecked(). */
    template <typename T>
    void
    addUnchecked(T &field, trace::SrcLoc loc = trace::here())
    {
        addRangeUnchecked(&field, sizeof(T), loc);
    }

    /** TX_END: flush snapshotted ranges, then retire the log. */
    void commit(trace::SrcLoc loc = trace::here());

    /** Roll back every snapshot now and retire the log. */
    void abort(trace::SrcLoc loc = trace::here());

    /** Whether this handle opened the outermost transaction. */
    bool outermost() const { return outer; }

  private:
    ObjPool &pool;
    bool outer = false;
    bool finished = false;
};

/** Run @p body inside a transaction (TX_BEGIN { } TX_END sugar). */
template <typename Body>
void
runTx(ObjPool &pool, Body &&body, trace::SrcLoc loc = trace::here())
{
    Tx tx(pool, loc);
    body(tx);
    tx.commit(loc);
}

/** Depth of the currently open transaction (0 = none); test hook. */
unsigned txDepth();

} // namespace xfd::pmlib

#endif // XFD_PMLIB_TX_HH
