/**
 * @file
 * Redo-log transactions (paper Table 1, row "Redo logging").
 *
 * Updates are staged in a persistent redo log instead of in place;
 * commit seals the log (count persisted last — the commit variable),
 * then the log is applied to the home locations and retired. If a
 * failure hits before the seal, recovery discards the incomplete log;
 * after the seal, recovery re-applies it ("If the redo log has not
 * been committed, the existing data is consistent. Otherwise, the
 * committed log is consistent.").
 *
 * The redo area is carved from the pool heap by the caller, so it can
 * coexist with undo-log transactions in one pool.
 */

#ifndef XFD_PMLIB_REDO_HH
#define XFD_PMLIB_REDO_HH

#include "pmlib/objpool.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** One staged write in the redo area. */
struct RedoEntry
{
    std::uint64_t addr;
    std::uint64_t size;
    std::uint8_t data[256];
};

constexpr std::size_t redoEntryCapacity = sizeof(RedoEntry::data);
constexpr std::size_t redoMaxEntries = 64;

/** Persistent redo-log area. */
struct RedoArea
{
    /** Number of sealed entries; 0 means nothing to re-apply. */
    std::uint32_t sealedCount;
    std::uint32_t pad;
    RedoEntry entries[redoMaxEntries];
};

/** An open redo transaction bound to a RedoArea inside the pool. */
class RedoTx
{
  public:
    /**
     * @param pool the object pool
     * @param area_addr PM address of a RedoArea (e.g. from palloc)
     */
    RedoTx(ObjPool &pool, Addr area_addr,
           trace::SrcLoc loc = trace::here());

    RedoTx(const RedoTx &) = delete;
    RedoTx &operator=(const RedoTx &) = delete;

    /** Abandons (discards) staged writes if commit() never ran. */
    ~RedoTx();

    /** Stage a write of @p n bytes to PM address @p dst. */
    void stage(void *dst, const void *src, std::size_t n,
               trace::SrcLoc loc = trace::here());

    /** Stage a single-field write. */
    template <typename T>
    void
    stageField(T &field, const T &value, trace::SrcLoc loc = trace::here())
    {
        stage(&field, &value, sizeof(T), loc);
    }

    /**
     * Seal the log (commit point), apply it home, retire it. After
     * commit() returns, all staged writes are persistent in place.
     */
    void commit(trace::SrcLoc loc = trace::here());

    /** Discard the staged writes (nothing was ever visible). */
    void abort(trace::SrcLoc loc = trace::here());

    /**
     * Recovery for a RedoArea: re-apply a sealed log, discard an
     * unsealed one. Idempotent; call on every open.
     */
    static void recover(ObjPool &pool, Addr area_addr,
                        trace::SrcLoc loc = trace::here());

    /** Bytes needed for a RedoArea allocation. */
    static constexpr std::size_t areaSize() { return sizeof(RedoArea); }

  private:
    RedoArea *area();

    ObjPool &pool;
    Addr areaAddr;
    /** Volatile staging count; persisted only at commit (the seal). */
    std::uint32_t staged = 0;
    bool finished = false;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_REDO_HH
