#include "pmlib/objpool.hh"

#include <cstring>

#include "common/logging.hh"

namespace xfd::pmlib
{

namespace
{

/** Checksum over every header field before `checksum` itself. */
std::uint64_t
headerChecksum(const PoolHeader &h)
{
    return fnv1a(&h, offsetof(PoolHeader, checksum));
}

} // namespace

ObjPool::ObjPool(trace::PmRuntime &rt, Addr base)
    : rt(rt), base(base), alloc(rt, base)
{
}

TxLogHeader *
ObjPool::txLog()
{
    return static_cast<TxLogHeader *>(pm().toHost(base + txLogOff));
}

std::size_t
ObjPool::rootSize() const
{
    const auto *h = static_cast<const PoolHeader *>(
        const_cast<ObjPool *>(this)->pm().toHost(base + headerOff));
    return h->rootSize;
}

ObjPool
ObjPool::create(trace::PmRuntime &rt, const char *layout,
                std::size_t root_size)
{
    pm::PmPool &pm = rt.pool();
    Addr base = pm.base();
    if (std::strlen(layout) >= sizeof(PoolHeader::layout))
        fatal("pool layout name too long: %s", layout);
    if (rootOff + root_size > heapOff)
        fatal("root object too large: %zu", root_size);

    trace::LibScope lib(rt, "pool_create");
    ObjPool pool(rt, base);

    // Format the undo log.
    TxLogHeader *log = pool.txLog();
    rt.store(log->active, 0u);
    rt.store(log->numEntries, 0u);
    rt.persistBarrier(log, sizeof(log->active) + sizeof(log->numEntries));

    // Format the allocator.
    pool.alloc.format(pm.size() - heapOff);

    // The root object is guaranteed zeroed (as PMDK guarantees for
    // pmemobj_root), so these zeroes are real persisted writes.
    if (root_size) {
        rt.setPm(pm.toHost(base + rootOff), 0, root_size);
        rt.persistBarrier(pm.toHost(base + rootOff), root_size);
    }

    // Header metadata, persisted piecewise exactly like PMDK's
    // util_pool_create_uuids(): consistent only once the final
    // checksum persist lands (§6.3.2 bug 4).
    auto *h = static_cast<PoolHeader *>(pm.toHost(base + headerOff));
    rt.store(h->magic, poolMagic);
    char padded[sizeof(PoolHeader::layout)] = {};
    std::strncpy(padded, layout, sizeof(padded) - 1);
    rt.copyToPm(h->layout, padded, sizeof(padded));
    rt.persistBarrier(h, sizeof(h->magic) + sizeof(h->layout));

    rt.store(h->uuid, static_cast<std::uint64_t>(0x5846444554454354ull));
    rt.store(h->poolSize, static_cast<std::uint64_t>(pm.size()));
    rt.store(h->rootOffset, static_cast<std::uint64_t>(rootOff));
    rt.store(h->rootSize, static_cast<std::uint64_t>(root_size));
    rt.store(h->heapOffset, static_cast<std::uint64_t>(heapOff));
    rt.store(h->heapSize,
             static_cast<std::uint64_t>(pm.size() - heapOff));
    rt.persistBarrier(&h->uuid, offsetof(PoolHeader, checksum) -
                                    offsetof(PoolHeader, uuid));

    rt.store(h->checksum, headerChecksum(*h));
    rt.persistBarrier(&h->checksum, sizeof(h->checksum));

    return pool;
}

bool
ObjPool::valid(trace::PmRuntime &rt, const char *layout)
{
    pm::PmPool &pm = rt.pool();
    const auto *h = static_cast<const PoolHeader *>(
        pm.toHost(pm.base() + headerOff));
    if (h->magic != poolMagic)
        return false;
    if (h->checksum != headerChecksum(*h))
        return false;
    if (std::strncmp(h->layout, layout, sizeof(h->layout)) != 0)
        return false;
    if (h->poolSize != pm.size())
        return false;
    return true;
}

ObjPool
ObjPool::open(trace::PmRuntime &rt, const char *layout,
              trace::SrcLoc loc)
{
    trace::LibScope lib(rt, "pool_open", loc);
    if (!valid(rt, layout)) {
        // PMDK's pmemobj_open() fails on a half-created pool; under
        // failure injection that is how §6.3.2 bug 4 is observed.
        if (rt.stage() == trace::Stage::PostFailure) {
            throw trace::PostFailureAbort{
                strprintf("pool_open(%s) failed: invalid or incomplete "
                          "pool metadata", layout),
                loc};
        }
        fatal("pool_open(%s): invalid pool", layout);
    }
    ObjPool pool(rt, rt.pool().base());
    pool.recoverTx();
    return pool;
}

ObjPool
ObjPool::openOrCreate(trace::PmRuntime &rt, const char *layout,
                      std::size_t root_size)
{
    if (!valid(rt, layout))
        return create(rt, layout, root_size);
    return open(rt, layout);
}

void
ObjPool::recoverTx()
{
    trace::LibScope lib(rt, "tx_recover");
    pm::PmPool &pm_pool = pm();
    TxLogHeader *log = txLog();

    // `active` is the log's validity bit: reading it post-failure is
    // the canonical benign cross-failure race (§3.1).
    if (rt.load(log->active) == 0)
        return;

    std::uint32_t n = rt.load(log->numEntries);
    for (std::uint32_t i = n; i-- > 0;) {
        std::uint64_t a = rt.load(log->entries[i].addr);
        std::uint64_t sz = rt.load(log->entries[i].size);
        rt.copyToPm(pm_pool.toHost(a), log->entries[i].data, sz);
        rt.persistBarrier(pm_pool.toHost(a), sz);
    }
    rt.store(log->active, 0u);
    rt.persistBarrier(&log->active, sizeof(log->active));
}

} // namespace xfd::pmlib
