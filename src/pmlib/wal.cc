#include "pmlib/wal.hh"

#include <cstring>

#include "common/logging.hh"

namespace xfd::pmlib
{

Wal::Wal(ObjPool &p, Addr area_addr, std::size_t log_capacity,
         std::size_t page_size, std::size_t max_pages, WalOptions o)
    : pool(p), areaAddr(area_addr), logCapacity(log_capacity),
      pageSize(page_size), maxPages(max_pages), opts(o)
{
    if (logCapacity == 0 || (logCapacity & 7))
        panic("wal: log capacity must be a nonzero multiple of 8");
    if (pageSize == 0 || (pageSize & 7))
        panic("wal: page size must be a nonzero multiple of 8");
}

WalHeader *
Wal::hdr()
{
    return static_cast<WalHeader *>(
        pool.pm().toHost(areaAddr, sizeof(WalHeader)));
}

std::uint64_t *
Wal::table()
{
    return static_cast<std::uint64_t *>(pool.pm().toHost(
        tableAddr(), maxPages * sizeof(std::uint64_t)));
}

std::uint8_t *
Wal::log()
{
    return static_cast<std::uint8_t *>(
        pool.pm().toHost(logAddr(), logCapacity));
}

void
Wal::format(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "wal_format", loc);
    WalHeader *h = hdr();

    rt.store(h->headOff, std::uint64_t{0}, loc);
    rt.store(h->ckptLsn[0], std::uint64_t{0}, loc);
    rt.store(h->ckptLsn[1], std::uint64_t{0}, loc);
    rt.persistBarrier(h, sizeof(WalHeader), loc);
    // The generation bump is an ordinary commit write: both descriptor
    // slots are durable before it, so the very first recovery already
    // finds its slot read inside a consistent commit window.
    rt.store(h->ckptGen, std::uint64_t{1}, loc);
    rt.persistBarrier(&h->ckptGen, sizeof(h->ckptGen), loc);
    // Magic last, PMDK-style: a failure mid-format leaves an area
    // recover() rejects wholesale instead of misreading.
    rt.store(h->magic, walMagic, loc);
    rt.persistBarrier(&h->magic, sizeof(h->magic), loc);

    nextLsn_ = 1;
    lastLsn = 0;
    gen = 1;
    describedLsn = 0;
    committedEnd = stagedEnd = 0;
    replayed = 0;
    staged.clear();
    dirtyTable.clear();
}

void
Wal::annotate(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    WalHeader *h = hdr();
    rt.addCommitVar(h->headOff, loc);
    rt.addCommitVar(h->ckptGen, loc);
    rt.addCommitRange(h->ckptGen, h->ckptLsn, sizeof(h->ckptLsn), loc);
}

Addr
Wal::registerPage(std::uint64_t page_id, trace::SrcLoc loc)
{
    if (page_id >= maxPages)
        panic("wal: page id %llu out of range",
              static_cast<unsigned long long>(page_id));
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "wal_register_page", loc);
    Addr a = pool.heap().palloc(pageSize, loc);
    if (!a)
        panic("wal: pool exhausted");
    rt.store(table()[page_id], static_cast<std::uint64_t>(a), loc);
    dirtyTable.push_back(page_id);
    return a;
}

Addr
Wal::pageAddr(std::uint64_t page_id, trace::SrcLoc loc)
{
    if (page_id >= maxPages)
        panic("wal: page id %llu out of range",
              static_cast<unsigned long long>(page_id));
    trace::PmRuntime &rt = pool.runtime();
    return static_cast<Addr>(rt.load(table()[page_id], loc));
}

void
Wal::append(std::uint64_t page_id, const void *img, trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "wal_append", loc);
    std::uint32_t len = static_cast<std::uint32_t>(pageSize);
    if (stagedEnd + frameSize(len) > logCapacity)
        panic("wal: log full (%zu byte arena)", logCapacity);

    std::uint64_t lsn = nextLsn_++;
    auto *r = reinterpret_cast<WalRecordHeader *>(log() + stagedEnd);
    rt.store(r->lsn, lsn, loc);
    rt.store(r->pageId, page_id, loc);
    rt.store(r->dataLen, len, loc);
    rt.store(r->crc, walRecordCrc(lsn, page_id, img, len), loc);
    rt.copyToPm(log() + stagedEnd + sizeof(WalRecordHeader), img, len,
                loc);
    staged.push_back(Staged{stagedEnd, page_id, len});
    stagedEnd += frameSize(len);

    if (opts.tornRecordAccepted) {
        // Planted defect: seal the head past this record before its
        // payload has been written back — the frame below the head
        // can be torn at the next failure point.
        WalHeader *h = hdr();
        rt.store(h->headOff, stagedEnd, loc);
        rt.persistBarrier(&h->headOff, sizeof(h->headOff), loc);
    }
}

void
Wal::commit(trace::SrcLoc loc)
{
    if (staged.empty() && dirtyTable.empty())
        return;
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "wal_commit", loc);
    WalHeader *h = hdr();

    // 1. Page-table entries for pages born in this batch must be
    //    durable before any record naming them can commit.
    for (std::uint64_t pid : dirtyTable) {
        rt.persistBarrier(&table()[pid], sizeof(std::uint64_t), loc);
    }
    dirtyTable.clear();

    auto flushPayload = [&] {
        std::uint64_t from = committedEnd;
        if (opts.unflushedLogHead && !staged.empty()) {
            // Planted defect: the first frame of the batch is left
            // out of the writeback range.
            from = staged.front().off + frameSize(staged.front().len);
        }
        if (stagedEnd > from)
            rt.persistBarrier(log() + from, stagedEnd - from, loc);
    };
    auto seal = [&] {
        if (stagedEnd == committedEnd)
            return;
        rt.store(h->headOff, stagedEnd, loc);
        rt.persistBarrier(&h->headOff, sizeof(h->headOff), loc);
    };
    if (opts.commitBeforePayload) {
        // Planted defect: the seal races ahead of the batch payload.
        seal();
        flushPayload();
    } else {
        flushPayload();
        seal();
    }

    // Apply in place. A failure anywhere below re-applies the sealed
    // batch on recovery (idempotent full-page images).
    for (const Staged &s : staged) {
        Addr home = static_cast<Addr>(rt.load(table()[s.pageId], loc));
        void *dst = pool.pm().toHost(home, s.len);
        rt.copyToPm(dst, log() + s.off + sizeof(WalRecordHeader),
                    s.len, loc);
        // The home writeback is checkpoint()'s truncation
        // precondition; the planted truncate_before_apply defect
        // drops it and truncates regardless.
        if (!opts.truncateBeforeApply)
            rt.persistBarrier(dst, s.len, loc);
    }
    committedEnd = stagedEnd;
    if (!staged.empty())
        lastLsn = nextLsn_ - 1;
    staged.clear();
}

void
Wal::checkpoint(trace::SrcLoc loc)
{
    if (!staged.empty())
        panic("wal: checkpoint with a staged, uncommitted batch");
    if (committedEnd == 0 && describedLsn == lastLsn)
        return; // nothing sealed since the last truncation
    trace::PmRuntime &rt = pool.runtime();
    trace::LibScope lib(rt, "wal_checkpoint", loc);
    WalHeader *h = hdr();

    // Write the dead slot, then flip the generation (the commit
    // write), then truncate. Every sealed record is already durable
    // in place — commit()'s per-record writeback is the precondition.
    std::uint64_t *slot = &h->ckptLsn[(gen + 1) & 1];
    rt.store(*slot, lastLsn, loc);
    rt.persistBarrier(slot, sizeof(*slot), loc);
    rt.store(h->ckptGen, gen + 1, loc);
    rt.persistBarrier(&h->ckptGen, sizeof(h->ckptGen), loc);
    gen++;
    rt.store(h->headOff, std::uint64_t{0}, loc);
    rt.persistBarrier(&h->headOff, sizeof(h->headOff), loc);
    committedEnd = stagedEnd = 0;
    describedLsn = lastLsn;
}

bool
Wal::recover(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    WalHeader *h = hdr();
    // Bookkeeping read, deliberately untraced: format() persists the
    // magic last, so an unformatted or half-created area is rejected
    // wholesale before any classified read happens.
    if (h->magic != walMagic)
        return false;

    std::uint64_t g = rt.load(h->ckptGen, loc); // commit var: benign
    // Planted defect: reading the dead slot replays past (or short
    // of) the durable checkpoint — the cross-failure semantic bug.
    unsigned slot = static_cast<unsigned>(
        (opts.replayPastCheckpoint ? g + 1 : g) & 1);
    std::uint64_t ck = rt.load(h->ckptLsn[slot], loc);
    std::uint64_t head = rt.load(h->headOff, loc); // commit var: benign
    if (head > logCapacity || (head & 7))
        throw trace::PostFailureAbort{"wal: corrupt log head", loc};

    // Planted defect: a raw scan ignores the sealed head and the
    // frame CRCs, trusting framing sanity alone.
    bool scanRaw = opts.missingCrcCheck;
    std::uint64_t end = scanRaw ? logCapacity : head;

    std::vector<std::uint8_t> buf(pageSize);
    std::uint64_t cur = 0;
    std::uint64_t maxLsn = ck;
    replayed = 0;
    while (cur + sizeof(WalRecordHeader) <= end) {
        auto *r = reinterpret_cast<WalRecordHeader *>(log() + cur);
        std::uint64_t lsn = rt.load(r->lsn, loc);
        if (lsn == 0) {
            if (scanRaw)
                break;
            throw trace::PostFailureAbort{
                "wal: torn record below the sealed head", loc};
        }
        std::uint64_t pid = rt.load(r->pageId, loc);
        std::uint32_t len = rt.load(r->dataLen, loc);
        if (len == 0 || len > pageSize || cur + frameSize(len) > end) {
            if (scanRaw)
                break;
            throw trace::PostFailureAbort{"wal: corrupt record length",
                                          loc};
        }
        if (pid >= maxPages) {
            if (scanRaw)
                break;
            throw trace::PostFailureAbort{
                "wal: record page id out of range", loc};
        }
        std::uint32_t storedCrc = rt.load(r->crc, loc);
        rt.readPm(buf.data(), log() + cur + sizeof(WalRecordHeader),
                  len, loc);
        if (!scanRaw &&
            walRecordCrc(lsn, pid, buf.data(), len) != storedCrc) {
            throw trace::PostFailureAbort{"wal: record crc mismatch",
                                          loc};
        }
        if (lsn > ck) {
            Addr home = pageAddr(pid, loc);
            if (home == 0) {
                if (scanRaw)
                    break;
                throw trace::PostFailureAbort{
                    "wal: record for an unregistered page", loc};
            }
            void *dst = pool.pm().toHost(home, len);
            rt.copyToPm(dst, buf.data(), len, loc);
            rt.persistBarrier(dst, len, loc);
            replayed++;
        }
        if (lsn > maxLsn)
            maxLsn = lsn;
        cur += frameSize(len);
    }

    nextLsn_ = maxLsn + 1;
    lastLsn = maxLsn;
    describedLsn = ck;
    gen = g;
    committedEnd = stagedEnd = head;
    staged.clear();
    dirtyTable.clear();
    return true;
}

} // namespace xfd::pmlib
