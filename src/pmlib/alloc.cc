#include "pmlib/alloc.hh"

#include "common/logging.hh"

namespace xfd::pmlib
{

namespace
{

constexpr std::size_t allocAlign = 16;

std::size_t
roundUp(std::size_t n)
{
    return (n + allocAlign - 1) & ~(allocAlign - 1);
}

} // namespace

PAllocator::PAllocator(trace::PmRuntime &rt, Addr base)
    : rt(rt), base(base)
{
}

AllocHeader *
PAllocator::hdr()
{
    return static_cast<AllocHeader *>(rt.pool().toHost(base + allocOff));
}

const AllocHeader *
PAllocator::hdr() const
{
    return static_cast<const AllocHeader *>(
        const_cast<trace::PmRuntime &>(rt).pool().toHost(base + allocOff));
}

void
PAllocator::format(std::size_t heap_size)
{
    trace::LibScope lib(rt, "palloc_format");
    AllocHeader *h = hdr();
    rt.store(h->bumpOff, static_cast<std::uint64_t>(heapOff));
    rt.store(h->freeHead, static_cast<std::uint64_t>(0));
    rt.persistBarrier(h, sizeof(*h));
    (void)heap_size;
}

Addr
PAllocator::palloc(std::size_t n, trace::SrcLoc loc)
{
    if (n == 0)
        panic("palloc: zero-size allocation");
    n = roundUp(n);

    trace::LibScope lib(rt, "palloc", loc);
    AllocHeader *h = hdr();
    pm::PmPool &pool = rt.pool();

    // First-fit over the free list.
    std::uint64_t prev = 0;
    std::uint64_t cur = rt.load(h->freeHead);
    while (cur != 0) {
        auto *blk = static_cast<BlockHeader *>(pool.toHost(cur));
        std::uint64_t bsize = rt.load(blk->size);
        std::uint64_t bnext = rt.load(blk->next);
        if (bsize >= n) {
            // Unlink; the single pointer update is the commit.
            if (prev == 0) {
                rt.store(h->freeHead, bnext);
                rt.persistBarrier(&h->freeHead, sizeof(h->freeHead));
            } else {
                auto *pb = static_cast<BlockHeader *>(pool.toHost(prev));
                rt.store(pb->next, bnext);
                rt.persistBarrier(&pb->next, sizeof(pb->next));
            }
            Addr user = cur + sizeof(BlockHeader);
            rt.noteAlloc(user, bsize, loc);
            rt.zeroFill(pool.toHost(user), bsize, loc);
            return user;
        }
        prev = cur;
        cur = bnext;
    }

    // Bump allocation.
    std::uint64_t off = rt.load(h->bumpOff);
    if (base + off + sizeof(BlockHeader) + n > base + pool.size()) {
        warn("palloc: pool exhausted");
        return 0;
    }
    Addr blk_addr = base + off;
    auto *blk = static_cast<BlockHeader *>(pool.toHost(blk_addr));
    rt.store(blk->size, static_cast<std::uint64_t>(n));
    rt.store(blk->next, static_cast<std::uint64_t>(0));
    rt.persistBarrier(blk, sizeof(*blk));
    rt.store(h->bumpOff,
             off + static_cast<std::uint64_t>(sizeof(BlockHeader) + n));
    rt.persistBarrier(&h->bumpOff, sizeof(h->bumpOff));

    Addr user = blk_addr + sizeof(BlockHeader);
    rt.noteAlloc(user, n, loc);
    rt.zeroFill(pool.toHost(user), n, loc);
    return user;
}

void
PAllocator::pfree(Addr a, trace::SrcLoc loc)
{
    if (a == 0)
        return;
    trace::LibScope lib(rt, "pfree", loc);
    pm::PmPool &pool = rt.pool();
    AllocHeader *h = hdr();
    Addr blk_addr = a - sizeof(BlockHeader);
    auto *blk = static_cast<BlockHeader *>(pool.toHost(blk_addr));
    std::uint64_t bsize = rt.load(blk->size);
    rt.noteFree(a, bsize, loc);
    // Push onto the free list; freeHead update is the commit.
    rt.store(blk->next, rt.load(h->freeHead));
    rt.persistBarrier(&blk->next, sizeof(blk->next));
    rt.store(h->freeHead, static_cast<std::uint64_t>(blk_addr));
    rt.persistBarrier(&h->freeHead, sizeof(h->freeHead));
}

std::size_t
PAllocator::blockSize(Addr a) const
{
    auto &pool = const_cast<trace::PmRuntime &>(rt).pool();
    auto *blk = static_cast<const BlockHeader *>(
        pool.toHost(a - sizeof(BlockHeader)));
    return blk->size;
}

std::size_t
PAllocator::bumpUsed() const
{
    return hdr()->bumpOff - heapOff;
}

} // namespace xfd::pmlib
