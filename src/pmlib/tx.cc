#include "pmlib/tx.hh"

#include <vector>

#include "common/logging.hh"
#include "trace/mutation.hh"

namespace xfd::pmlib
{

namespace
{

/** One open transaction per thread (parallel detection runs
    post-failure stages on worker threads). */
thread_local unsigned depth = 0;

/** Ranges snapshotted by the open transaction (volatile dedupe). */
thread_local std::vector<AddrRange> activeAdds;

bool
alreadyAdded(Addr a, std::size_t n)
{
    for (const auto &r : activeAdds) {
        if (r.begin <= a && a + n <= r.end)
            return true;
    }
    return false;
}

} // namespace

unsigned
txDepth()
{
    return depth;
}

Tx::Tx(ObjPool &p, trace::SrcLoc loc) : pool(p)
{
    trace::PmRuntime &rt = pool.runtime();
    if (depth++ > 0)
        return; // nested: flatten into the outermost transaction
    outer = true;
    activeAdds.clear();

    trace::LibScope lib(rt, trace::labels::txBegin, loc);
    TxLogHeader *log = pool.txLog();
    rt.store(log->numEntries, 0u, loc);
    rt.persistBarrier(&log->numEntries, sizeof(log->numEntries), loc);
    rt.store(log->active, 1u, loc);
    rt.persistBarrier(&log->active, sizeof(log->active), loc);
}

Tx::~Tx()
{
    if (!finished)
        abort();
}

void
Tx::addRange(void *p, std::size_t n, trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    Addr a = rt.pool().toAddr(p);
    if (alreadyAdded(a, n))
        return; // PMDK semantics: covered ranges are skipped
    addRangeUnchecked(p, n, loc);
}

void
Tx::addRangeUnchecked(void *p, std::size_t n, trace::SrcLoc loc)
{
    if (finished)
        panic("TX_ADD on a finished transaction");
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    Addr a = pm.toAddr(p);
    activeAdds.push_back(AddrRange{a, a + n});

    // Fault injection (src/mutate): the volatile dedupe above stays
    // intact either way so the mutant's control flow matches the
    // baseline call-for-call.
    auto action = trace::MutationHook::TxAddAction::Normal;
    if (trace::MutationHook *h = rt.mutationHook())
        action = h->onTxAdd();
    if (action == trace::MutationHook::TxAddAction::Skip)
        return;

    // The annotation is emitted at the caller's location so the
    // backend can attribute duplicate-TX_ADD performance bugs.
    rt.noteTxAdd(a, n, loc);

    trace::LibScope lib(rt, "tx_add", loc);
    TxLogHeader *log = pool.txLog();
    std::size_t off = 0;
    while (off < n) {
        std::size_t chunk = std::min(n - off, txEntryCapacity);
        std::uint32_t idx = rt.load(log->numEntries, loc);
        if (idx >= txMaxEntries)
            panic("undo log full (%u entries)", idx);
        TxEntry &e = log->entries[idx];
        rt.store(e.addr, static_cast<std::uint64_t>(a + off), loc);
        rt.store(e.size, static_cast<std::uint64_t>(chunk), loc);
        // Snapshot the current (old) contents into the log.
        rt.copyToPm(e.data, pm.toHost(a + off), chunk, loc);
        rt.persistBarrier(&e, sizeof(TxEntry), loc);
        // Publishing the entry count commits the snapshot. A stale
        // mutant leaves the count unpublished: recovery misses the
        // entry, and the next TX_ADD overwrites the same slot.
        if (action != trace::MutationHook::TxAddAction::StalePublish) {
            rt.store(log->numEntries, idx + 1, loc);
            rt.persistBarrier(&log->numEntries, sizeof(log->numEntries),
                              loc);
        }
        off += chunk;
    }
}

void
Tx::commit(trace::SrcLoc loc)
{
    if (finished)
        return;
    finished = true;
    if (depth > 0)
        depth--;
    if (!outer)
        return;

    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    trace::LibScope lib(rt, trace::labels::txCommit, loc);
    TxLogHeader *log = pool.txLog();

    // Fault injection (src/mutate): a commit-before-data mutant
    // retires the log before the data ranges are flushed.
    bool retire_first = false;
    if (trace::MutationHook *h = rt.mutationHook())
        retire_first = h->onTxCommit();

    auto retire = [&] {
        rt.store(log->active, 0u, loc);
        rt.persistBarrier(&log->active, sizeof(log->active), loc);
    };
    if (retire_first)
        retire();

    // Flush every snapshotted range: the in-place updates the caller
    // made inside the transaction become persistent here.
    std::uint32_t n = rt.load(log->numEntries, loc);
    for (std::uint32_t i = 0; i < n; i++) {
        std::uint64_t a = rt.load(log->entries[i].addr, loc);
        std::uint64_t sz = rt.load(log->entries[i].size, loc);
        rt.clwb(pm.toHost(a), sz, loc);
    }
    rt.sfence(loc);

    // Retire the log: `active` is the commit variable.
    if (!retire_first)
        retire();
}

void
Tx::abort(trace::SrcLoc loc)
{
    if (finished)
        return;
    finished = true;
    if (depth > 0)
        depth--;
    if (!outer)
        return;

    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();
    trace::LibScope lib(rt, trace::labels::txAbort, loc);
    TxLogHeader *log = pool.txLog();

    // Roll back in reverse order, then retire the log.
    std::uint32_t n = rt.load(log->numEntries, loc);
    for (std::uint32_t i = n; i-- > 0;) {
        std::uint64_t a = rt.load(log->entries[i].addr, loc);
        std::uint64_t sz = rt.load(log->entries[i].size, loc);
        rt.copyToPm(pm.toHost(a), log->entries[i].data, sz, loc);
        rt.persistBarrier(pm.toHost(a), sz, loc);
    }
    rt.store(log->active, 0u, loc);
    rt.persistBarrier(&log->active, sizeof(log->active), loc);
}

} // namespace xfd::pmlib
