/**
 * @file
 * On-"media" layout of an xfd::pmlib object pool.
 *
 * Mirrors the parts of PMDK's libpmemobj layout the paper's workloads
 * depend on: a pool header with layout name and checksum (whose
 * non-failure-atomic creation is §6.3.2 bug 4), a single-threaded undo
 * log for transactions, allocator metadata, a root object, and a heap.
 */

#ifndef XFD_PMLIB_LAYOUT_HH
#define XFD_PMLIB_LAYOUT_HH

#include <cstdint>

#include "common/types.hh"

namespace xfd::pmlib
{

/** Pool-header magic ("XFDPOOL1"). */
constexpr std::uint64_t poolMagic = 0x314c4f4f50444658ull;

/** Fixed offsets within a pool (all cache-line aligned). */
constexpr std::size_t headerOff = 0;
constexpr std::size_t txLogOff = 4096;
constexpr std::size_t allocOff = 294912;
constexpr std::size_t rootOff = 299008;
constexpr std::size_t heapOff = 327680;

/** Pool metadata, written by ObjPool::create / validated by open. */
struct PoolHeader
{
    std::uint64_t magic;
    char layout[24];
    std::uint64_t uuid;
    std::uint64_t poolSize;
    std::uint64_t rootOffset;
    std::uint64_t rootSize;
    std::uint64_t heapOffset;
    std::uint64_t heapSize;
    /** Checksum over all prior fields; written/persisted last. */
    std::uint64_t checksum;
};

static_assert(sizeof(PoolHeader) <= 4096);

/** One undo-log slot; large TX_ADD ranges are chunked across slots. */
struct TxEntry
{
    std::uint64_t addr;
    std::uint64_t size;
    std::uint8_t data[512];
};

constexpr std::size_t txEntryCapacity = sizeof(TxEntry::data);
constexpr std::size_t txMaxEntries = 512;

/** Undo-log header: `active` is the log's validity/commit variable. */
struct TxLogHeader
{
    std::uint32_t active;
    std::uint32_t numEntries;
    TxEntry entries[txMaxEntries];
};

static_assert(txLogOff + sizeof(TxLogHeader) <= allocOff);

/** Allocator metadata: bump frontier plus a singly-linked free list. */
struct AllocHeader
{
    std::uint64_t bumpOff;  ///< next unused heap offset
    std::uint64_t freeHead; ///< PM address of first free block (0=none)
};

/** Per-block header preceding every heap allocation. */
struct BlockHeader
{
    std::uint64_t size; ///< usable bytes (excluding this header)
    std::uint64_t next; ///< free-list link while free
};

/** FNV-1a over a byte range; used for the pool-header checksum. */
inline std::uint64_t
fnv1a(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; i++) {
        h ^= b[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace xfd::pmlib

#endif // XFD_PMLIB_LAYOUT_HH
