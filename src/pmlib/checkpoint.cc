#include "pmlib/checkpoint.hh"

#include "common/logging.hh"

namespace xfd::pmlib
{

Checkpointer::Checkpointer(ObjPool &p, Addr area_addr, Addr data_addr,
                           std::size_t data_size)
    : pool(p), areaAddr(area_addr), dataAddr(data_addr),
      dataSize(data_size)
{
    if (data_size == 0)
        fatal("checkpointer: empty data region");
}

Checkpointer::Header *
Checkpointer::header()
{
    return static_cast<Header *>(
        pool.pm().toHost(areaAddr, sizeof(Header)));
}

Addr
Checkpointer::slotAddr(unsigned idx) const
{
    return areaAddr + headerSize + idx * dataSize;
}

void
Checkpointer::annotate(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    Header *h = header();
    rt.addCommitVar(h->generation, loc);
    rt.addCommitRange(h->generation,
                      pool.pm().toHost(slotAddr(0), dataSize), dataSize,
                      loc);
    rt.addCommitRange(h->generation,
                      pool.pm().toHost(slotAddr(1), dataSize), dataSize,
                      loc);
}

void
Checkpointer::format(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = pool.pm();
    trace::LibScope lib(rt, "ckpt_format", loc);
    Header *h = header();
    rt.store(h->dataSize, static_cast<std::uint64_t>(dataSize), loc);
    // Generation 0: slot 0 snapshots the initial live data.
    rt.copyToPm(pm.toHost(slotAddr(0), dataSize),
                pm.toHost(dataAddr, dataSize), dataSize, loc);
    rt.persistBarrier(pm.toHost(slotAddr(0), dataSize), dataSize, loc);
    rt.store(h->generation, std::uint64_t{0}, loc);
    rt.persistBarrier(&h->generation, sizeof(h->generation), loc);
}

void
Checkpointer::checkpoint(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = pool.pm();
    trace::LibScope lib(rt, "ckpt_take", loc);
    Header *h = header();
    std::uint64_t gen = rt.load(h->generation, loc);
    unsigned next = static_cast<unsigned>((gen + 1) & 1);
    rt.copyToPm(pm.toHost(slotAddr(next), dataSize),
                pm.toHost(dataAddr, dataSize), dataSize, loc);
    rt.persistBarrier(pm.toHost(slotAddr(next), dataSize), dataSize,
                      loc);
    // Commit write: the new generation names the fresh slot.
    rt.store(h->generation, gen + 1, loc);
    rt.persistBarrier(&h->generation, sizeof(h->generation), loc);
}

void
Checkpointer::restore(trace::SrcLoc loc)
{
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = pool.pm();
    trace::LibScope lib(rt, "ckpt_restore", loc);
    Header *h = header();
    // Benign cross-failure race: the generation picks the slot.
    std::uint64_t gen = rt.load(h->generation, loc);
    unsigned cur = static_cast<unsigned>(gen & 1);
    rt.copyToPm(pm.toHost(dataAddr, dataSize),
                pm.toHost(slotAddr(cur), dataSize), dataSize, loc);
    rt.persistBarrier(pm.toHost(dataAddr, dataSize), dataSize, loc);
}

std::uint64_t
Checkpointer::generation(trace::SrcLoc loc)
{
    return pool.runtime().load(header()->generation, loc);
}

} // namespace xfd::pmlib
