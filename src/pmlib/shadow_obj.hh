/**
 * @file
 * Shadow paging / copy-on-write object updates (paper Table 1, row
 * "Shadow paging"): the object under modification gets a separate
 * copy; once the shadow is complete and persistent, a single
 * failure-atomic pointer swap publishes it ("If the shadow object has
 * been committed, data in the shadow object is consistent. Otherwise,
 * the old data is consistent.").
 */

#ifndef XFD_PMLIB_SHADOW_OBJ_HH
#define XFD_PMLIB_SHADOW_OBJ_HH

#include "pmlib/atomic.hh"
#include "pmlib/objpool.hh"

namespace xfd::pmlib
{

/**
 * Update the object referenced by @p current out of place.
 *
 * @param mutate called as mutate(rt, T*) on the (zeroed or copied)
 *               shadow object; its writes are ordinary traced writes
 * @return PM address of the published object
 */
template <typename T, typename Mutator>
Addr
shadowUpdate(ObjPool &pool, pm::PPtr<T> &current, Mutator mutate,
             trace::SrcLoc loc = trace::here())
{
    trace::PmRuntime &rt = pool.runtime();
    pm::PmPool &pm = rt.pool();

    Addr shadow = pool.heap().palloc(sizeof(T), loc);
    if (!shadow)
        panic("shadowUpdate: pool exhausted");
    auto *dst = static_cast<T *>(pm.toHost(shadow, sizeof(T)));

    pm::PPtr<T> old = rt.load(current, loc);
    if (!old.null()) {
        // Start from the current contents (copy-on-write).
        rt.copyToPm(dst, old.get(pm), sizeof(T), loc);
    } else {
        rt.setPm(dst, 0, sizeof(T), loc);
    }
    mutate(rt, dst);
    rt.persistBarrier(dst, sizeof(T), loc);

    // Swap: the pointer update is the commit (failure-atomic).
    atomicStore(rt, current, pm::PPtr<T>(shadow), loc);

    if (!old.null())
        pool.heap().pfree(old.addr(), loc);
    return shadow;
}

} // namespace xfd::pmlib

#endif // XFD_PMLIB_SHADOW_OBJ_HH
