/**
 * @file
 * Object-pool handle — the libpmemobj-equivalent entry point.
 *
 * An ObjPool is a *volatile* handle (per execution stage) over the
 * persistent pool: it binds the tracing runtime to the pool layout.
 * Creating and opening run under library-granularity tracing, exactly
 * like PMDK internals in the paper (§5.3), and opening performs the
 * undo-log recovery.
 */

#ifndef XFD_PMLIB_OBJPOOL_HH
#define XFD_PMLIB_OBJPOOL_HH

#include <string>

#include "pmlib/alloc.hh"
#include "pmlib/layout.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** Volatile handle over a persistent object pool. */
class ObjPool
{
  public:
    /**
     * Format @p rt's pool. Must not already contain a valid pool.
     *
     * Creation persists the header piecewise with the checksum last,
     * mirroring PMDK's util_pool_create_uuids(): "all data have been
     * persisted at the end of the creation function, however, there is
     * no consistency guarantee in the middle" — a failure mid-create
     * leaves a pool that open() rejects (§6.3.2 bug 4). Recovery code
     * must use openOrCreate() to handle that window.
     *
     * @param layout layout name recorded in (and checked against) the
     *               header, max 23 characters
     * @param root_size size of the root object (zeroed, persisted)
     */
    static ObjPool create(trace::PmRuntime &rt, const char *layout,
                          std::size_t root_size);

    /**
     * Open an existing pool and run recovery (undo-log rollback).
     *
     * On an invalid header: in the post-failure stage throws
     * trace::PostFailureAbort (the driver records a RecoveryFailure);
     * in the pre-failure stage it is fatal.
     */
    static ObjPool open(trace::PmRuntime &rt, const char *layout,
                        trace::SrcLoc loc = trace::here());

    /**
     * Open if valid, else (re)format — the Fixed-mode recovery path
     * for failures during pool creation.
     */
    static ObjPool openOrCreate(trace::PmRuntime &rt, const char *layout,
                                std::size_t root_size);

    /** @return whether @p rt's pool holds a valid header for @p layout. */
    static bool valid(trace::PmRuntime &rt, const char *layout);

    trace::PmRuntime &runtime() { return rt; }
    pm::PmPool &pm() { return rt.pool(); }

    /** Typed host pointer to the root object. */
    template <typename T>
    T *
    root()
    {
        return static_cast<T *>(pm().toHost(rootAddr()));
    }

    Addr rootAddr() const { return base + rootOff; }
    std::size_t rootSize() const;

    /** The pool's persistent allocator. */
    PAllocator &heap() { return alloc; }

    /** Host pointer to the undo log (used by Tx and recovery). */
    TxLogHeader *txLog();

    /** Pool base address. */
    Addr baseAddr() const { return base; }

  private:
    ObjPool(trace::PmRuntime &rt, Addr base);

    /** Roll back an interrupted transaction from the undo log. */
    void recoverTx();

    trace::PmRuntime &rt;
    Addr base;
    PAllocator alloc;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_OBJPOOL_HH
