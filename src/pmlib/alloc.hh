/**
 * @file
 * Persistent heap allocator.
 *
 * Provides the two allocation idioms the paper's workloads use:
 *  - palloc()/pfree(): raw allocation used inside transactions;
 *  - allocAtomic(): PMDK POBJ_ALLOC-style atomic allocation that
 *    zeroes the object and publishes it by atomically persisting a
 *    target pointer.
 *
 * The allocator zero-fills new blocks, but — exactly as the paper
 * argues for PMDK's zeroing allocator (§6.3.2 bug 2) — programs must
 * not rely on that: the zero-fill reaches the PM image only, so the
 * detector still flags post-failure reads of never-initialized cells.
 */

#ifndef XFD_PMLIB_ALLOC_HH
#define XFD_PMLIB_ALLOC_HH

#include "pm/pool.hh"
#include "pmlib/layout.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** Free-list + bump allocator over the pool heap. */
class PAllocator
{
  public:
    /**
     * @param rt tracing runtime bound to the pool
     * @param base pool base address
     */
    PAllocator(trace::PmRuntime &rt, Addr base);

    /** Format allocator metadata (called by ObjPool::create). */
    void format(std::size_t heap_size);

    /**
     * Allocate @p n bytes (rounded up to 16); zero-filled.
     * @param loc caller location recorded as the allocation site
     * @return PM address of the block, or 0 when out of memory
     */
    Addr palloc(std::size_t n, trace::SrcLoc loc = trace::here());

    /** Free a block previously returned by palloc(). */
    void pfree(Addr a, trace::SrcLoc loc = trace::here());

    /**
     * POBJ_ALLOC-style atomic allocation: allocates, runs the
     * caller's constructor on the (zeroed) object, persists the
     * contents, then atomically sets and persists @p target.
     *
     * @param init constructor called as init(rt, host_ptr) *before*
     *             the object is published; its writes are ordinary
     *             user-level traced writes, as with PMDK's
     *             pmemobj_alloc constructor callback
     */
    template <typename T, typename Init>
    bool
    allocAtomic(pm::PPtr<T> &target, std::size_t n, Init init,
                trace::SrcLoc loc = trace::here())
    {
        Addr a = palloc(n, loc);
        if (!a)
            return false;
        void *host = rt.pool().toHost(a);
        init(rt, static_cast<T *>(host));
        trace::LibScope lib(rt, "palloc_atomic", loc);
        rt.persistBarrier(host, n, loc);
        // Publish: PMDK performs this pointer update through an
        // internal redo log, so it is failure-atomic — either the old
        // or the new (persisted) value is ever observable. We model
        // that guarantee by excluding failure points from the publish
        // window.
        {
            trace::SkipFailureScope atomic(rt, loc);
            rt.store(target, pm::PPtr<T>(a), loc);
            rt.persistBarrier(&target, sizeof(target), loc);
        }
        return true;
    }

    /** allocAtomic() with no constructor (contents implicitly zero). */
    template <typename T>
    bool
    allocAtomic(pm::PPtr<T> &target, std::size_t n,
                trace::SrcLoc loc = trace::here())
    {
        return allocAtomic(target, n, [](trace::PmRuntime &, T *) {},
                           loc);
    }

    /** Usable size of the block at @p a. */
    std::size_t blockSize(Addr a) const;

    /** Bytes of heap consumed by the bump frontier (stats). */
    std::size_t bumpUsed() const;

  private:
    AllocHeader *hdr();
    const AllocHeader *hdr() const;

    trace::PmRuntime &rt;
    Addr base;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_ALLOC_HH
