/**
 * @file
 * Checkpointing (paper Table 1, row "Checkpointing").
 *
 * A data region is periodically snapshotted into one of two
 * alternating slots; the generation counter — persisted last — is the
 * commit variable. After a failure, recovery restores the slot named
 * by the last committed generation: "Data in the latest committed
 * checkpoint is consistent", and reading an *older* checkpoint is the
 * canonical cross-failure semantic bug of §2 ("reading from older
 * checkpoints during the post-failure stage violates the semantics of
 * the crash consistency mechanism").
 */

#ifndef XFD_PMLIB_CHECKPOINT_HH
#define XFD_PMLIB_CHECKPOINT_HH

#include "pmlib/objpool.hh"
#include "trace/runtime.hh"

namespace xfd::pmlib
{

/** Double-buffered checkpoint manager for one PM data region. */
class Checkpointer
{
  public:
    /**
     * @param pool the object pool
     * @param area_addr PM address of the checkpoint area (areaSize()
     *                  bytes, e.g. from palloc)
     * @param data_addr PM address of the live data region
     * @param data_size bytes checkpointed per generation
     */
    Checkpointer(ObjPool &pool, Addr area_addr, Addr data_addr,
                 std::size_t data_size);

    /** Persistent area layout: header then two slots. */
    static std::size_t
    areaSize(std::size_t data_size)
    {
        return headerSize + 2 * data_size;
    }

    /** Initialize the area: generation 0 snapshots the live data. */
    void format(trace::SrcLoc loc = trace::here());

    /**
     * Take a checkpoint: copy the live region into the non-current
     * slot, persist it, then bump and persist the generation (the
     * commit write).
     */
    void checkpoint(trace::SrcLoc loc = trace::here());

    /**
     * Recovery: overwrite the live region from the last committed
     * checkpoint slot and persist it.
     */
    void restore(trace::SrcLoc loc = trace::here());

    /** Committed generation count. */
    std::uint64_t generation(trace::SrcLoc loc = trace::here());

    /**
     * Register the generation counter as a commit variable covering
     * the checkpoint slots (call in both stages before detection).
     */
    void annotate(trace::SrcLoc loc = trace::here());

    /** PM address of checkpoint slot @p idx (tests/inspection). */
    Addr slotAddr(unsigned idx) const;

    static constexpr std::size_t headerSize = 64;

  private:
    struct Header
    {
        std::uint64_t generation;
        std::uint64_t dataSize;
    };

    Header *header();

    ObjPool &pool;
    Addr areaAddr;
    Addr dataAddr;
    std::size_t dataSize;
};

} // namespace xfd::pmlib

#endif // XFD_PMLIB_CHECKPOINT_HH
