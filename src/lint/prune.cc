/**
 * @file
 * Failure-point prunability — the loop-iteration equivalence pass.
 *
 * Adjacent-frontier subset rules prune nothing in practice: the epoch
 * idiom (write; flush; fence) puts writes in every inter-point
 * interval, and elision already removed the no-op fences. What *is*
 * redundant is repetition across loop iterations: the Nth insert
 * fails at the same ordering point, with the same in-flight write
 * sites and the same commit-consistency picture, as the first insert
 * did. Findings deduplicate by source location (core::BugSink keys on
 * reader/writer lines, and recovery failures carry the failure
 * point's own location, equal within a group), so an equal signature
 * at an equal ordering-point location can only reproduce the kept
 * representative's findings.
 */

#include <map>

#include "common/logging.hh"
#include "lint/frontier.hh"
#include "lint/lint.hh"

namespace xfd::lint
{

PruneVerdicts
computePruneVerdicts(const trace::TraceBuffer &pre,
                     const std::vector<std::uint32_t> &points,
                     unsigned granularity, bool flushFree)
{
    PruneVerdicts v;
    if (points.empty())
        return v;

    FrontierState st(granularity, flushFree);
    // Ordering-point location -> signature -> kept representative.
    std::map<std::string, std::map<std::string, std::uint32_t>> seen;

    std::size_t next = 0;
    for (const auto &e : pre) {
        if (next < points.size() && e.seq == points[next]) {
            // The failure preempts this entry, so the signature is
            // the state *before* it applies.
            std::string group =
                strprintf("%s:%u", e.loc.file, e.loc.line);
            std::string sig = st.signature();
            auto &bySig = seen[group];
            auto it = bySig.find(sig);
            if (it == bySig.end()) {
                bySig.emplace(std::move(sig), e.seq);
                v.kept.push_back(e.seq);
            } else {
                v.pruned.push_back(
                    PruneVerdicts::Pruned{e.seq, it->second});
            }
            next++;
        }
        st.apply(e);
        if (next >= points.size())
            break;
    }
    if (next < points.size()) {
        fatal("lint prune: %zu planned point(s) not found in the "
              "trace (first missing seq %u)",
              points.size() - next, points[next]);
    }
    return v;
}

} // namespace xfd::lint
