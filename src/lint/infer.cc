/**
 * @file
 * WITCHER-style commit-variable inference (XL08).
 *
 * A commit variable is the atomically-written flag a low-level
 * crash-consistency mechanism publishes through: the program stores
 * it and immediately makes exactly that store durable (flush + fence
 * with nothing else pending), over and over. The inference pass walks
 * the pre-failure trace once with a small cell model and records, per
 * store target, how often its retiring fence persisted *only* it —
 * the solo-persist publish signature. Comparing the signature against
 * the trace's CommitVar/CommitRange annotations yields the XL08
 * diagnostics in rules.cc:
 *
 *  - an annotated commit variable whose stores become durable but are
 *    never solo-persisted does not behave like one (the annotation is
 *    suspect, or the publish lost its own fence);
 *  - an address that exhibits the full signature but is covered by no
 *    annotation is a likely missing annotation — reported only when
 *    the workload annotates at all, so unannotated (transactional)
 *    workloads stay silent.
 *
 * Library-internal stores never become candidates (the PM library's
 * own publishes, e.g. pmlib::atomicStore targets, are the library's
 * business), but their cells still participate in the persistency
 * model so a fence retiring app data *and* library data is correctly
 * not a solo persist.
 */

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "lint/lint.hh"

namespace xfd::lint
{

namespace
{

constexpr Addr lineBytes = 64;

/** Would the dynamic detector report on this entry? (rules.cc twin) */
bool
detectable(const trace::TraceEntry &e)
{
    return e.has(trace::flagInRoi) && !e.has(trace::flagInternal) &&
           !e.has(trace::flagSkipDetection);
}

/** Per-cell model state: who wrote it last, and is it pending. */
struct Cell
{
    /** Base address of the last store covering the cell. */
    Addr writerAddr = 0;
    /** The last writer was a detectable application store. */
    bool writerDetectable = false;
};

/** Running stats of one store target. */
struct Stat
{
    std::uint32_t size = 0;
    std::uint32_t stores = 0;
    std::uint32_t soloPersists = 0;
    bool everDurable = false;
    std::uint32_t lastStoreSeq = 0;
    trace::SrcLoc lastStore;
};

} // namespace

CommitVarInferenceResult
inferCommitVars(const trace::TraceBuffer &pre, unsigned granularity,
                bool flushFree)
{
    using trace::Op;

    CommitVarInferenceResult out;
    if (granularity == 0)
        granularity = 1;
    if (flushFree)
        return out;

    std::map<Addr, Stat> stats;      // keyed by store base address
    std::map<std::uint64_t, Cell> cells; // keyed by cell index
    // Cells flushed (or ntstored), retiring at the next fence.
    std::set<std::uint64_t> pending;
    std::vector<AddrRange> annotations;

    auto cellsOf = [granularity](Addr a, std::uint32_t n,
                                 const std::function<void(std::uint64_t)>
                                     &fn) {
        if (n == 0)
            return;
        for (std::uint64_t c = a / granularity;
             c <= (a + n - 1) / granularity; c++) {
            fn(c);
        }
    };

    for (const auto &e : pre) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite: {
            if (e.has(trace::flagImageOnly))
                break;
            bool det = detectable(e);
            if (det) {
                Stat &s = stats[e.addr];
                s.stores++;
                s.size = std::max(s.size, e.size);
                s.lastStoreSeq = e.seq;
                s.lastStore = e.loc;
            }
            cellsOf(e.addr, e.size, [&](std::uint64_t c) {
                cells[c] = Cell{e.addr, det};
                if (e.op == Op::NtWrite)
                    pending.insert(c);
                else
                    pending.erase(c);
            });
            break;
          }
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush: {
            Addr lo = e.addr & ~(lineBytes - 1);
            Addr hi = e.addr + std::max<std::uint32_t>(e.size, 1);
            for (Addr line = lo; line < hi; line += lineBytes) {
                cellsOf(line, static_cast<std::uint32_t>(lineBytes),
                        [&](std::uint64_t c) {
                            if (cells.count(c))
                                pending.insert(c);
                        });
            }
            break;
          }
          case Op::Sfence:
          case Op::Mfence: {
            if (pending.empty())
                break;
            // One distinct detectable writer across every retired
            // cell is the solo-persist signature. A retirement set
            // made up entirely of already-annotated targets also
            // counts for each of them: protocols legitimately publish
            // a group of commit variables through one fence (ringlog
            // flushes wr and chk together).
            std::set<Addr> writers;
            bool foreign = false;
            for (std::uint64_t c : pending) {
                auto it = cells.find(c);
                if (it == cells.end())
                    continue;
                if (!it->second.writerDetectable) {
                    foreign = true;
                    continue;
                }
                writers.insert(it->second.writerAddr);
            }
            bool allAnnotated = !foreign && !writers.empty();
            for (Addr w : writers) {
                const Stat &s = stats[w];
                AddrRange r{w, w + std::max<std::uint32_t>(s.size, 1)};
                bool hit = false;
                for (const AddrRange &a : annotations) {
                    if (r.overlaps(a)) {
                        hit = true;
                        break;
                    }
                }
                if (!hit) {
                    allAnnotated = false;
                    break;
                }
            }
            for (Addr w : writers) {
                auto it = stats.find(w);
                if (it == stats.end())
                    continue;
                it->second.everDurable = true;
                if ((writers.size() == 1 && !foreign) || allAnnotated)
                    it->second.soloPersists++;
            }
            // Retired cells leave the model until rewritten.
            for (std::uint64_t c : pending)
                cells.erase(c);
            pending.clear();
            break;
          }
          case Op::CommitVar:
            out.annotationsPresent = true;
            [[fallthrough]];
          case Op::CommitRange:
            annotations.push_back(
                AddrRange{e.addr, e.addr + std::max<std::uint32_t>(
                                               e.size, 1)});
            break;
          case Op::Free:
            cellsOf(e.addr, e.size, [&](std::uint64_t c) {
                cells.erase(c);
                pending.erase(c);
            });
            break;
          default:
            break;
        }
    }

    for (const auto &[addr, s] : stats) {
        CommitVarCandidate c;
        c.addr = addr;
        c.size = s.size;
        c.stores = s.stores;
        c.soloPersists = s.soloPersists;
        c.everDurable = s.everDurable;
        c.lastStoreSeq = s.lastStoreSeq;
        c.lastStore = s.lastStore;
        AddrRange r{addr, addr + std::max<std::uint32_t>(s.size, 1)};
        for (const AddrRange &a : annotations) {
            if (r.overlaps(a)) {
                c.annotated = true;
                break;
            }
        }
        out.candidates.push_back(std::move(c));
    }
    return out;
}

} // namespace xfd::lint
