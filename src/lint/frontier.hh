/**
 * @file
 * Frontier dataflow over the pre-failure trace — the lint-side mirror
 * of the shadow PM's persistency FSM (core/shadow_pm.cc), without the
 * post-failure read-check machinery.
 *
 * One forward walk maintains, per cell (granularity bytes): the
 * persistency state (Modified / WritebackPending / Persisted), the
 * source location and seq of the last writer, the last-modified
 * timestamp, and the uninitialized flag; plus the commit-variable
 * registry with last / pre-last commit timestamps. Rules query the
 * state *before* an entry applies; the prune pass snapshots a
 * signature at each planned failure point the same way.
 */

#ifndef XFD_LINT_FRONTIER_HH
#define XFD_LINT_FRONTIER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/entry.hh"

namespace xfd::lint
{

/** Persistency state of a tracked cell (untracked = Unmodified). */
enum class CellState : std::uint8_t
{
    Modified,         ///< written, not yet flushed
    WritebackPending, ///< flushed (or ntstore), awaiting a fence
    Persisted,        ///< retired by a fence
};

/** Lint-side shadow cell. */
struct FrontierCell
{
    CellState st = CellState::Modified;
    /** Source of the last write (or allocation). */
    trace::SrcLoc writer;
    std::uint32_t writerSeq = 0;
    /** Timestamp of the last modification (fences increment time). */
    std::int32_t tlast = -1;
    /** Allocated but never explicitly written. */
    bool uninit = false;
};

/** The dataflow state machine. */
class FrontierState
{
  public:
    /**
     * @p flushFree selects the eADR/CXL persistency semantics (the
     * lint-side mirror of ShadowPM's model switch): writes land
     * directly in Persisted, flushes are no-ops, and fences only
     * advance the timestamp. Must match the campaign's --pm-model for
     * prune verdicts to stay sound.
     */
    explicit FrontierState(unsigned granularity,
                           bool flushFree = false);

    /** Advance the state past @p e. */
    void apply(const trace::TraceEntry &e);

    /** @name Pre-apply queries used by the rule engine @{ */

    /** Any cell of the line at @p line in state @p st? */
    bool lineHasState(Addr line, CellState st) const;

    /** Any tracked (ever-written) cell in the line at @p line? */
    bool lineTracked(Addr line) const;

    /** Would a fence retire at least one pending cell right now? */
    bool fenceWouldRetire() const;

    /** Any non-commit-variable cell still Modified or Pending? */
    bool dataInFlight() const;

    /** Any cell of [@p a, @p a + @p n) currently WritebackPending? */
    bool rangePending(Addr a, std::uint32_t n) const;

    /** Is @p a inside a registered commit variable? */
    bool isCommitVarAddr(Addr a) const;

    /** @} */

    /**
     * Canonical frontier signature for failure-point pruning: the set
     * of (writer file, writer line, uninit, commit class, allocation
     * region) over in-flight cells plus the set of (writer file,
     * writer line, stale, allocation region) over persisted,
     * commit-covered, commit-inconsistent cells. The allocation
     * region — the Alloc site plus the cell's offset inside the live
     * allocation, or "root" for untracked (root-struct) memory —
     * disambiguates a single store statement that aliases
     * structurally different targets (a bucket head in the root
     * object vs. an interior next field of a heap node; child[0] vs.
     * child[1] of one node type): recovery reaches those through
     * different reads, so they must not prune against each other. The
     * commit class (uncovered / covered-consistent /
     * covered-inconsistent) matters because the read check passes a
     * consistent in-flight cell but reports a race on an inconsistent
     * one. Two points with equal signatures at the same
     * ordering-point source location yield the same post-failure
     * finding keys.
     */
    std::string signature() const;

    /**
     * Visit every cell still Modified or WritebackPending (for the
     * unpersisted-at-exit rule), in address order.
     */
    void forEachInFlight(
        const std::function<void(Addr, const FrontierCell &)> &fn) const;

    unsigned granularity() const { return gran; }

    /** Whether the eADR/CXL flush-free semantics are selected. */
    bool flushFree() const { return eadr; }

  private:
    /** Commit variable with its address set and commit timestamps. */
    struct CommitVar
    {
        AddrRange var{0, 0};
        std::vector<AddrRange> ranges;
        std::int32_t tlast = -1;
        std::int32_t tprelast = -1;
        /** Hex of the last commit write's bytes (16-byte cap). */
        std::string lastVal;
    };

    std::uint64_t cellIndex(Addr a) const { return a / gran; }

    /** Cells covering [a, a+n). */
    std::uint64_t
    cellCount(Addr a, std::size_t n) const
    {
        if (n == 0)
            return 0;
        return (a + n - 1) / gran - a / gran + 1;
    }

    /**
     * Commit variable governing @p a: explicit ranges first, then the
     * single-variable default-cover rule (§5.2).
     */
    const CommitVar *coveringVar(Addr a) const;

    void applyWrite(const trace::TraceEntry &e);
    void applyFlush(Addr line);
    void applyFence();

    /** Allocation-region tag of @p a for signature strings. */
    std::string regionTag(Addr a) const;

    unsigned gran;
    /** eADR/CXL flush-free semantics (see the constructor). */
    bool eadr;
    /** Ordered so signatures and exit scans are deterministic. */
    std::map<std::uint64_t, FrontierCell> cells;
    /** Live allocations: begin -> (end, alloc site). */
    std::map<Addr, std::pair<Addr, trace::SrcLoc>> allocs;
    std::vector<CommitVar> commitVars;
    /** Cell indices awaiting retirement at the next fence. */
    std::vector<std::uint64_t> pendingCells;
    std::int32_t ts = 0;
};

} // namespace xfd::lint

#endif // XFD_LINT_FRONTIER_HH
