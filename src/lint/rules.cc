/**
 * @file
 * The lint rule engine: one forward walk over the pre-failure trace,
 * consulting the frontier dataflow state *before* each entry applies.
 *
 * Reporting mirrors the dynamic detector's conventions: a diagnostic
 * is only emitted for operations the detector would report on (inside
 * the RoI, outside library internals, outside skipDetection regions),
 * and identical diagnostics for the same (rule, address, seq) key are
 * deduplicated, so the lint output of a trace is the same no matter
 * how many times or on how many driver threads it is replayed.
 */

#include <cstring>
#include <set>
#include <tuple>

#include "common/logging.hh"
#include "lint/frontier.hh"
#include "lint/lint.hh"
#include "trace/iter.hh"
#include "trace/runtime.hh"

namespace xfd::lint
{

namespace
{

/** Would the dynamic detector report on this entry? */
bool
detectable(const trace::TraceEntry &e)
{
    return e.has(trace::flagInRoi) && !e.has(trace::flagInternal) &&
           !e.has(trace::flagSkipDetection);
}

/** An open TX_ADD range with the site that registered it. */
struct OpenAdd
{
    AddrRange range;
    std::uint32_t seq;
    trace::SrcLoc loc;
};

/** Collects diagnostics with (rule, addr, seq) deduplication. */
class DiagSink
{
  public:
    DiagSink(LintReport &r, std::uint32_t rules) : rep(r), mask(rules) {}

    bool enabled(Rule r) const { return (mask & ruleBit(r)) != 0; }

    void
    report(Diagnostic d)
    {
        if (!enabled(d.rule))
            return;
        if (!seen.emplace(static_cast<int>(d.rule), d.addr, d.seq)
                 .second) {
            return;
        }
        rep.hits[static_cast<std::size_t>(d.rule)]++;
        rep.diagnostics.push_back(std::move(d));
    }

  private:
    LintReport &rep;
    std::uint32_t mask;
    std::set<std::tuple<int, Addr, std::uint32_t>> seen;
};

Diagnostic
makeDiag(Rule rule, const trace::TraceEntry &e, std::string note)
{
    Diagnostic d;
    d.rule = rule;
    d.addr = e.addr;
    d.size = e.size;
    d.seq = e.seq;
    d.loc = e.loc;
    d.note = std::move(note);
    return d;
}

} // namespace

LintReport
runLint(const trace::TraceBuffer &pre, const LintConfig &cfg,
        const std::vector<std::uint32_t> *plannedPoints)
{
    using trace::Op;

    LintReport rep;
    // The flush-centric rules assume a writeback is how data becomes
    // durable; under the flush-free model every flush is equally dead
    // weight (and every fence retires nothing), so those rules would
    // only generate noise. Suppress them at the mask level so the
    // report's `rules` field records what actually ran.
    std::uint32_t effective = cfg.rules;
    if (cfg.flushFree) {
        effective &= ~(ruleBit(Rule::RedundantWriteback) |
                       ruleBit(Rule::FlushUnmodified) |
                       ruleBit(Rule::FenceNoPending) |
                       ruleBit(Rule::EpochOrder) |
                       ruleBit(Rule::CommitVarInference));
    }
    rep.rules = effective;
    DiagSink sink(rep, effective);

    FrontierState st(cfg.granularity, cfg.flushFree);
    std::vector<OpenAdd> openAdds;

    for (const auto &e : pre) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite: {
            if (e.has(trace::flagImageOnly) || !detectable(e))
                break;
            if (sink.enabled(Rule::CommitFenceMissing) &&
                st.isCommitVarAddr(e.addr) && st.dataInFlight()) {
                sink.report(makeDiag(
                    Rule::CommitFenceMissing, e,
                    "commit write while guarded data is not yet "
                    "durable; fence the data first"));
            }
            if (sink.enabled(Rule::EpochOrder) &&
                !st.isCommitVarAddr(e.addr) &&
                st.rangePending(e.addr, e.size)) {
                sink.report(makeDiag(
                    Rule::EpochOrder, e,
                    "write to a line already flushed in this epoch; "
                    "the earlier writeback will not cover it"));
            }
            break;
          }
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush: {
            if (!detectable(e))
                break;
            if (st.lineHasState(e.addr, CellState::Modified))
                break;
            if (st.lineTracked(e.addr)) {
                sink.report(makeDiag(
                    Rule::RedundantWriteback, e,
                    "redundant writeback: no modified data in line"));
            } else {
                sink.report(makeDiag(
                    Rule::FlushUnmodified, e,
                    "flush of a line with no tracked PM writes"));
            }
            break;
          }
          case Op::Sfence:
          case Op::Mfence:
            if (detectable(e) && !st.fenceWouldRetire()) {
                sink.report(makeDiag(
                    Rule::FenceNoPending, e,
                    "fence with no pending writebacks to retire"));
            }
            break;
          case Op::TxAdd: {
            AddrRange r{e.addr, e.addr + e.size};
            const OpenAdd *covering = nullptr;
            for (const auto &prev : openAdds) {
                if (prev.range.begin <= r.begin &&
                    r.end <= prev.range.end) {
                    covering = &prev;
                    break;
                }
            }
            if (covering) {
                if (detectable(e)) {
                    Diagnostic d = makeDiag(
                        Rule::DuplicateTxAdd, e,
                        "duplicated TX_ADD of the same PM object");
                    d.relatedSeq = covering->seq;
                    d.related = covering->loc;
                    sink.report(std::move(d));
                }
            } else {
                openAdds.push_back(OpenAdd{r, e.seq, e.loc});
            }
            break;
          }
          case Op::LibCall:
            if (trace::isTxBoundary(e))
                openAdds.clear();
            break;
          default:
            break;
        }
        st.apply(e);
    }

    // XL05: cells still in flight once the trace ends, grouped by
    // writer location (one loop writing many cells is one diagnostic).
    if (sink.enabled(Rule::UnpersistedAtExit)) {
        struct Group
        {
            Addr first;
            std::size_t cellCount;
            std::uint32_t seq;
            trace::SrcLoc loc;
        };
        std::map<std::pair<std::string, unsigned>, Group> groups;
        st.forEachInFlight([&](Addr a, const FrontierCell &c) {
            if (c.uninit)
                return; // allocated-but-never-written is not a write
            auto key = std::make_pair(std::string(c.writer.file),
                                      c.writer.line);
            auto [it, fresh] = groups.emplace(
                key, Group{a, 0, c.writerSeq, c.writer});
            it->second.cellCount++;
            if (!fresh && c.writerSeq < it->second.seq) {
                it->second.seq = c.writerSeq;
                it->second.first = std::min(it->second.first, a);
            }
        });
        for (const auto &[key, g] : groups) {
            Diagnostic d;
            d.rule = Rule::UnpersistedAtExit;
            d.addr = g.first;
            d.size = static_cast<std::uint32_t>(
                g.cellCount * st.granularity());
            d.seq = g.seq;
            d.loc = g.loc;
            d.note = strprintf("%zu cell(s) written here never reach "
                               "durability before the trace ends",
                               g.cellCount);
            sink.report(std::move(d));
        }
    }

    // XL08: WITCHER-style commit-variable inference vs. annotations.
    // Both directions fire only against annotations, so workloads
    // that never annotate (transactional mechanisms) stay silent.
    if (sink.enabled(Rule::CommitVarInference)) {
        CommitVarInferenceResult inf =
            inferCommitVars(pre, cfg.granularity, cfg.flushFree);
        for (const CommitVarCandidate &c : inf.candidates) {
            if (c.annotated && c.stores > 0 && c.everDurable &&
                c.soloPersists == 0) {
                // Annotated, durably stored, but every retirement
                // carried other data too: no publish behavior. (A var
                // that never becomes durable at all is XL05's case.)
                Diagnostic d;
                d.rule = Rule::CommitVarInference;
                d.addr = c.addr;
                d.size = c.size;
                d.seq = c.lastStoreSeq;
                d.loc = c.lastStore;
                d.note = strprintf(
                    "annotated commit variable is never the only data "
                    "a fence retires (%u store(s)); inference sees no "
                    "atomic-publish behavior here",
                    c.stores);
                sink.report(std::move(d));
            } else if (!c.annotated && inf.annotationsPresent &&
                       c.looksLikeCommitVar()) {
                Diagnostic d;
                d.rule = Rule::CommitVarInference;
                d.addr = c.addr;
                d.size = c.size;
                d.seq = c.lastStoreSeq;
                d.loc = c.lastStore;
                d.note = strprintf(
                    "store is immediately and solely persisted %u "
                    "time(s) like a commit variable but is covered by "
                    "no annotation",
                    c.soloPersists);
                sink.report(std::move(d));
            }
        }
    }

    if (plannedPoints) {
        rep.pointsConsidered = plannedPoints->size();
        rep.prune = computePruneVerdicts(pre, *plannedPoints,
                                         cfg.granularity, cfg.flushFree);
    }
    return rep;
}

} // namespace xfd::lint
