/**
 * @file
 * Lint report renderers: the human-readable scoreboard and the
 * "xfd-lint-v1" JSON document. Both are pure functions of the report
 * (no timing, no pointers), so serial and parallel campaigns over the
 * same trace render byte-identical output.
 */

#include "common/logging.hh"
#include "lint/lint.hh"

namespace xfd::lint
{

const char *
ruleId(Rule r)
{
    switch (r) {
      case Rule::RedundantWriteback: return "XL01";
      case Rule::DuplicateTxAdd: return "XL02";
      case Rule::FlushUnmodified: return "XL03";
      case Rule::FenceNoPending: return "XL04";
      case Rule::UnpersistedAtExit: return "XL05";
      case Rule::CommitFenceMissing: return "XL06";
      case Rule::EpochOrder: return "XL07";
      case Rule::CommitVarInference: return "XL08";
    }
    return "XL??";
}

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::RedundantWriteback: return "redundant_writeback";
      case Rule::DuplicateTxAdd: return "duplicate_tx_add";
      case Rule::FlushUnmodified: return "flush_unmodified";
      case Rule::FenceNoPending: return "fence_no_pending";
      case Rule::UnpersistedAtExit: return "unpersisted_at_exit";
      case Rule::CommitFenceMissing: return "commit_fence_missing";
      case Rule::EpochOrder: return "epoch_order";
      case Rule::CommitVarInference: return "commit_var_inference";
    }
    return "unknown";
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Perf: return "perf";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

Severity
ruleSeverity(Rule r)
{
    switch (r) {
      case Rule::RedundantWriteback: return Severity::Perf;
      case Rule::DuplicateTxAdd: return Severity::Perf;
      case Rule::FlushUnmodified: return Severity::Perf;
      case Rule::FenceNoPending: return Severity::Note;
      case Rule::UnpersistedAtExit: return Severity::Error;
      case Rule::CommitFenceMissing: return Severity::Error;
      case Rule::EpochOrder: return Severity::Warning;
      case Rule::CommitVarInference: return Severity::Note;
    }
    return Severity::Note;
}

bool
parseRuleList(const std::string &csv, std::uint32_t &mask,
              std::string *err)
{
    if (csv.empty() || csv == "all") {
        mask = allRules;
        return true;
    }
    mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string tok = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        bool found = false;
        for (std::size_t i = 0; i < ruleCount; i++) {
            auto r = static_cast<Rule>(i);
            if (tok == ruleId(r) || tok == ruleName(r)) {
                mask |= ruleBit(r);
                found = true;
                break;
            }
        }
        if (!found) {
            if (err) {
                // %02zu: past nine rules, "XL0%zu" would render the
                // last id as "XL010" and no longer match ruleId().
                *err = strprintf(
                    "unknown lint rule \"%s\" (expected \"all\", "
                    "XL01..XL%02zu, or rule names)",
                    tok.c_str(), ruleCount);
            }
            return false;
        }
    }
    if (mask == 0) {
        if (err)
            *err = "empty lint rule list";
        return false;
    }
    return true;
}

std::string
Diagnostic::str() const
{
    std::string s = strprintf(
        "[%s %s] %s at %s:%u (%s), seq %u, addr %#llx+%u",
        ruleId(rule), severityName(ruleSeverity(rule)), note.c_str(),
        loc.file, loc.line, loc.func, seq,
        static_cast<unsigned long long>(addr), size);
    if (relatedSeq != noSeq) {
        s += strprintf("; first at %s:%u, seq %u", related.file,
                       related.line, relatedSeq);
    }
    return s;
}

std::string
renderText(const LintReport &rep)
{
    std::string s = strprintf("=== xfd-lint: %zu diagnostic(s) ===\n",
                              rep.diagnostics.size());
    for (const auto &d : rep.diagnostics)
        s += d.str() + "\n";

    std::string hits;
    for (std::size_t i = 0; i < ruleCount; i++) {
        auto r = static_cast<Rule>(i);
        if (!(rep.rules & ruleBit(r)) || rep.hits[i] == 0)
            continue;
        if (!hits.empty())
            hits += ", ";
        hits += strprintf("%s=%zu", ruleId(r), rep.hits[i]);
    }
    s += strprintf("rule hits: %s\n",
                   hits.empty() ? "none" : hits.c_str());

    if (rep.pointsConsidered) {
        s += strprintf(
            "prunable failure points: %zu/%zu (%.1f%%)\n",
            rep.prune.pruned.size(), rep.pointsConsidered,
            100.0 * rep.prune.pruneRatio());
    }
    return s;
}

namespace
{

void
writeLoc(obs::JsonWriter &w, const trace::SrcLoc &loc)
{
    w.beginObject();
    w.field("file", loc.file);
    w.field("line", static_cast<std::uint64_t>(loc.line));
    w.field("func", loc.func);
    w.endObject();
}

} // namespace

void
writeLintJson(const LintReport &rep, obs::JsonWriter &w)
{
    w.beginObject();
    w.field("schema", "xfd-lint-v1");

    w.key("diagnostics").beginArray();
    for (const auto &d : rep.diagnostics) {
        w.beginObject();
        w.field("rule", ruleId(d.rule));
        w.field("name", ruleName(d.rule));
        w.field("severity", severityName(ruleSeverity(d.rule)));
        w.field("addr",
                strprintf("%#llx",
                          static_cast<unsigned long long>(d.addr)));
        w.field("size", static_cast<std::uint64_t>(d.size));
        w.field("seq", static_cast<std::uint64_t>(d.seq));
        w.key("loc");
        writeLoc(w, d.loc);
        if (d.relatedSeq != Diagnostic::noSeq) {
            w.field("related_seq",
                    static_cast<std::uint64_t>(d.relatedSeq));
            w.key("related");
            writeLoc(w, d.related);
        }
        w.field("note", d.note);
        w.endObject();
    }
    w.endArray();

    w.key("hits").beginObject();
    for (std::size_t i = 0; i < ruleCount; i++) {
        auto r = static_cast<Rule>(i);
        if (rep.rules & ruleBit(r)) {
            w.field(ruleId(r),
                    static_cast<std::uint64_t>(rep.hits[i]));
        }
    }
    w.endObject();

    w.key("prune").beginObject();
    w.field("points",
            static_cast<std::uint64_t>(rep.pointsConsidered));
    w.field("kept", static_cast<std::uint64_t>(rep.prune.kept.size()));
    w.field("pruned",
            static_cast<std::uint64_t>(rep.prune.pruned.size()));
    w.field("ratio", rep.prune.pruneRatio());
    w.key("pruned_points").beginArray();
    for (const auto &p : rep.prune.pruned) {
        w.beginObject();
        w.field("fp", static_cast<std::uint64_t>(p.fp));
        w.field("kept_rep", static_cast<std::uint64_t>(p.keptRep));
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

} // namespace xfd::lint
