#include "lint/frontier.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace xfd::lint
{

FrontierState::FrontierState(unsigned granularity, bool flushFree)
    : gran(granularity), eadr(flushFree)
{
    if (gran == 0 || (gran & (gran - 1)) != 0 || gran > cacheLineSize)
        fatal("lint granularity must be a power of two <= 64");
}

void
FrontierState::applyWrite(const trace::TraceEntry &e)
{
    if (e.size == 0)
        return;
    bool non_temporal = e.op == trace::Op::NtWrite;
    std::uint64_t first = cellIndex(e.addr);
    std::uint64_t count = cellCount(e.addr, e.size);
    // Flush-free model: every store is durable on arrival, mirroring
    // ShadowPM::preWrite under eADR.
    CellState to = eadr            ? CellState::Persisted
                   : non_temporal ? CellState::WritebackPending
                                  : CellState::Modified;
    for (std::uint64_t i = 0; i < count; i++) {
        FrontierCell &c = cells[first + i];
        c.st = to;
        c.writer = e.loc;
        c.writerSeq = e.seq;
        c.tlast = ts;
        c.uninit = false;
        if (non_temporal && !eadr)
            pendingCells.push_back(first + i);
    }
    // A write overlapping a commit variable is a commit write: it
    // versions the consistency window of the variable's address set.
    // The written value is recorded too — recovery branches on it
    // (that is what a commit variable is for), so points whose
    // commit variables hold different values must never prune
    // against each other.
    for (auto &cv : commitVars) {
        if (cv.var.overlaps({e.addr, e.addr + e.size})) {
            cv.tprelast = cv.tlast;
            cv.tlast = ts;
            cv.lastVal.clear();
            if (e.has(trace::flagSameValue) && e.data.empty()) {
                // Payload-elided write: the actual value is whatever
                // the image held, which the signature cannot see.
                // Seed with the entry seq so two points only match
                // when they share this exact commit write (then the
                // value is trivially the same) — conservative, never
                // folds points whose commit values could differ.
                cv.lastVal = strprintf("sv#%u", e.seq);
            }
            for (std::size_t i = 0; i < e.data.size() && i < 16; i++)
                cv.lastVal += strprintf("%02x", e.data[i]);
        }
    }
}

void
FrontierState::applyFlush(Addr line)
{
    // Flush-free model: a writeback changes no persistence state.
    if (eadr)
        return;
    std::uint64_t first = cellIndex(line);
    std::uint64_t count = cellCount(line, cacheLineSize);
    for (std::uint64_t i = 0; i < count; i++) {
        auto it = cells.find(first + i);
        if (it != cells.end() && it->second.st == CellState::Modified) {
            it->second.st = CellState::WritebackPending;
            pendingCells.push_back(first + i);
        }
    }
}

void
FrontierState::applyFence()
{
    for (std::uint64_t idx : pendingCells) {
        auto it = cells.find(idx);
        if (it != cells.end() &&
            it->second.st == CellState::WritebackPending) {
            it->second.st = CellState::Persisted;
        }
    }
    pendingCells.clear();
    ts++;
}

void
FrontierState::apply(const trace::TraceEntry &e)
{
    using trace::Op;

    switch (e.op) {
      case Op::Write:
      case Op::NtWrite:
        if (!e.has(trace::flagImageOnly))
            applyWrite(e);
        break;
      case Op::Clwb:
      case Op::ClflushOpt:
      case Op::Clflush:
        applyFlush(e.addr);
        break;
      case Op::Sfence:
      case Op::Mfence:
        applyFence();
        break;
      case Op::Alloc: {
        std::uint64_t first = cellIndex(e.addr);
        std::uint64_t count = cellCount(e.addr, e.size);
        for (std::uint64_t i = 0; i < count; i++) {
            FrontierCell &c = cells[first + i];
            c.st = CellState::Modified;
            c.writer = e.loc;
            c.writerSeq = e.seq;
            c.tlast = ts;
            c.uninit = true;
        }
        if (e.size)
            allocs[e.addr] = {e.addr + e.size, e.loc};
        break;
      }
      case Op::Free: {
        std::uint64_t first = cellIndex(e.addr);
        std::uint64_t count = cellCount(e.addr, e.size);
        for (std::uint64_t i = 0; i < count; i++)
            cells.erase(first + i);
        allocs.erase(e.addr);
        break;
      }
      case Op::CommitVar: {
        AddrRange r{e.addr, e.addr + e.size};
        for (const auto &cv : commitVars) {
            if (cv.var == r)
                return;
        }
        commitVars.push_back(CommitVar{r, {}, -1, -1, {}});
        break;
      }
      case Op::CommitRange:
        for (auto &cv : commitVars) {
            if (cv.var.contains(e.aux)) {
                AddrRange r{e.addr, e.addr + e.size};
                if (std::find(cv.ranges.begin(), cv.ranges.end(), r) ==
                    cv.ranges.end()) {
                    cv.ranges.push_back(r);
                }
                return;
            }
        }
        break;
      default:
        break;
    }
}

bool
FrontierState::lineHasState(Addr line, CellState st) const
{
    std::uint64_t first = cellIndex(line);
    std::uint64_t count = cellCount(line, cacheLineSize);
    for (std::uint64_t i = 0; i < count; i++) {
        auto it = cells.find(first + i);
        if (it != cells.end() && it->second.st == st)
            return true;
    }
    return false;
}

bool
FrontierState::lineTracked(Addr line) const
{
    std::uint64_t first = cellIndex(line);
    std::uint64_t count = cellCount(line, cacheLineSize);
    for (std::uint64_t i = 0; i < count; i++) {
        if (cells.count(first + i))
            return true;
    }
    return false;
}

bool
FrontierState::fenceWouldRetire() const
{
    for (std::uint64_t idx : pendingCells) {
        auto it = cells.find(idx);
        if (it != cells.end() &&
            it->second.st == CellState::WritebackPending) {
            return true;
        }
    }
    return false;
}

bool
FrontierState::dataInFlight() const
{
    for (const auto &[idx, c] : cells) {
        if (c.st == CellState::Persisted)
            continue;
        if (!isCommitVarAddr(idx * gran))
            return true;
    }
    return false;
}

bool
FrontierState::rangePending(Addr a, std::uint32_t n) const
{
    std::uint64_t first = cellIndex(a);
    std::uint64_t count = cellCount(a, n);
    for (std::uint64_t i = 0; i < count; i++) {
        auto it = cells.find(first + i);
        if (it != cells.end() &&
            it->second.st == CellState::WritebackPending) {
            return true;
        }
    }
    return false;
}

bool
FrontierState::isCommitVarAddr(Addr a) const
{
    for (const auto &cv : commitVars) {
        if (cv.var.contains(a))
            return true;
    }
    return false;
}

const FrontierState::CommitVar *
FrontierState::coveringVar(Addr a) const
{
    for (const auto &cv : commitVars) {
        for (const auto &r : cv.ranges) {
            if (r.contains(a))
                return &cv;
        }
    }
    if (commitVars.size() == 1 && commitVars.front().ranges.empty())
        return &commitVars.front();
    return nullptr;
}

std::string
FrontierState::regionTag(Addr a) const
{
    auto it = allocs.upper_bound(a);
    if (it != allocs.begin()) {
        --it;
        if (a < it->second.first) {
            // Alloc site plus field offset: instances of one object
            // type collapse, but distinct fields of it do not (a
            // ctree node's child[0] vs child[1] are read back by
            // different recovery statements).
            const trace::SrcLoc &loc = it->second.second;
            return strprintf(
                "%s:%u+%llu", loc.file, loc.line,
                static_cast<unsigned long long>(a - it->first));
        }
    }
    return "root";
}

std::string
FrontierState::signature() const
{
    // Sets of strings rather than cell indices: the signature must be
    // identical across loop iterations that touch *different*
    // addresses through the *same* code, so cells contribute their
    // writer's source location and allocation region, not their
    // address.
    std::set<std::string> inflight;
    std::set<std::string> inconsistent;
    for (const auto &[idx, c] : cells) {
        if (c.st != CellState::Persisted) {
            // The read check passes an in-flight cell only when its
            // commit window covers it consistently, so that class —
            // uncovered, covered-consistent, covered-inconsistent —
            // must be part of the cell's identity.
            const CommitVar *var = coveringVar(idx * gran);
            char commit = 'n';
            if (var) {
                commit = var->tprelast <= c.tlast &&
                                 c.tlast < var->tlast
                             ? 'c'
                             : 'i';
            }
            inflight.insert(strprintf(
                "%s:%u:%c%c@%s", c.writer.file, c.writer.line,
                c.uninit ? 'u' : '-', commit,
                regionTag(idx * gran).c_str()));
            continue;
        }
        if (c.uninit)
            continue;
        const CommitVar *var = coveringVar(idx * gran);
        if (!var)
            continue;
        bool consistent =
            var->tprelast <= c.tlast && c.tlast < var->tlast;
        if (consistent)
            continue;
        bool stale = c.tlast < var->tprelast;
        inconsistent.insert(strprintf(
            "%s:%u:%c@%s", c.writer.file, c.writer.line,
            stale ? 's' : '-', regionTag(idx * gran).c_str()));
    }
    std::string sig;
    for (const auto &s : inflight) {
        sig += s;
        sig += ';';
    }
    sig += '|';
    for (const auto &s : inconsistent) {
        sig += s;
        sig += ';';
    }
    // Commit-variable values: recovery branches on them, so the
    // current value (plus the persistency state of the variable's
    // first cell, which decides what a realistic crash image holds)
    // is part of the failure point's identity.
    for (std::size_t i = 0; i < commitVars.size(); i++) {
        const CommitVar &cv = commitVars[i];
        char st = '-';
        auto it = cells.find(cellIndex(cv.var.begin));
        if (it != cells.end()) {
            switch (it->second.st) {
              case CellState::Modified: st = 'm'; break;
              case CellState::WritebackPending: st = 'w'; break;
              case CellState::Persisted: st = 'p'; break;
            }
        }
        sig += strprintf("#%zu=%s:%c", i, cv.lastVal.c_str(), st);
    }
    return sig;
}

void
FrontierState::forEachInFlight(
    const std::function<void(Addr, const FrontierCell &)> &fn) const
{
    for (const auto &[idx, c] : cells) {
        if (c.st != CellState::Persisted)
            fn(idx * gran, c);
    }
}

} // namespace xfd::lint
