/**
 * @file
 * xfd-lint — static persistency analysis over a pre-failure trace.
 *
 * The dynamic detector discovers performance bugs and ordering
 * mistakes as a side effect of replaying post-failure executions; the
 * lint pass finds the statically-decidable subset by walking the
 * pre-failure trace once, with no post-failure stage at all:
 *
 *  - diagnostics: eight rules (XL01..XL08) over the persistency FSM —
 *    redundant writebacks, duplicated TX_ADD, flushes of unmodified
 *    lines, no-op fences, writes never persisted at exit, commit
 *    writes issued before their data is durable, epoch
 *    (write -> flush -> fence) ordering violations, and
 *    WITCHER-style commit-variable inference disagreeing with a
 *    workload's annotations;
 *  - prunability: per planned failure point, whether an earlier point
 *    at the same ordering-point source location had an identical
 *    frontier signature, in which case the post-failure execution is
 *    statically redundant and the driver may fold it into its
 *    representative's batch group (--backend=batched).
 *
 * The analysis consumes an in-memory trace::TraceBuffer or a loaded
 * serialized trace; it depends only on trace/ and obs/ (for JSON
 * rendering), so core::Driver can call into it without a cycle.
 */

#ifndef XFD_LINT_LINT_HH
#define XFD_LINT_LINT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/json.hh"
#include "trace/buffer.hh"

namespace xfd::lint
{

/** Statically-checkable persistency rules, in stable-ID order. */
enum class Rule : std::uint8_t
{
    RedundantWriteback, ///< XL01: flush of a line with no modified data
    DuplicateTxAdd,     ///< XL02: TX_ADD contained in an open TX_ADD
    FlushUnmodified,    ///< XL03: flush of a line never written
    FenceNoPending,     ///< XL04: fence with nothing to retire
    UnpersistedAtExit,  ///< XL05: write still in flight at trace end
    CommitFenceMissing, ///< XL06: commit write before data is durable
    EpochOrder,         ///< XL07: write to a flushed, un-fenced line
    CommitVarInference, ///< XL08: inferred commit var vs. annotation
};

/** Number of distinct rules (for per-rule counter arrays). */
inline constexpr std::size_t ruleCount = 8;

/** Bit for @p r in a rule mask. */
inline constexpr std::uint32_t
ruleBit(Rule r)
{
    return 1u << static_cast<unsigned>(r);
}

/** Mask with every rule enabled. */
inline constexpr std::uint32_t allRules = (1u << ruleCount) - 1;

/** Stable rule identifier ("XL01".."XL08"). */
const char *ruleId(Rule r);

/** Stable rule name ("redundant_writeback", ...). */
const char *ruleName(Rule r);

/** Diagnostic severity, fixed per rule. */
enum class Severity : std::uint8_t { Note, Perf, Warning, Error };

const char *severityName(Severity s);

/** Severity a diagnostic of rule @p r carries. */
Severity ruleSeverity(Rule r);

/**
 * Parse a --lint rule selection: "all", or a comma-separated list of
 * rule ids ("XL01") and/or names ("redundant_writeback").
 * @return false (with *err set) on an unknown rule.
 */
bool parseRuleList(const std::string &csv, std::uint32_t &mask,
                   std::string *err);

/** One lint finding, anchored to trace op sequence numbers. */
struct Diagnostic
{
    static constexpr std::uint32_t noSeq = ~std::uint32_t{0};

    Rule rule = Rule::RedundantWriteback;
    /** First PM address the diagnostic is about. */
    Addr addr = 0;
    std::uint32_t size = 0;
    /** Sequence number of the offending trace op. */
    std::uint32_t seq = noSeq;
    trace::SrcLoc loc;
    /** Related earlier op (e.g. the covering TX_ADD), if any. */
    std::uint32_t relatedSeq = noSeq;
    trace::SrcLoc related;
    std::string note;

    /** One-line human-readable rendering. */
    std::string str() const;
};

/** Lint pass configuration. */
struct LintConfig
{
    /** Enabled rules (default: all). */
    std::uint32_t rules = allRules;
    /** Frontier cell granularity in bytes (match the detector's). */
    unsigned granularity = 1;
    /**
     * eADR/CXL flush-free persistency semantics (match the detector's
     * --pm-model). Stores are durable on arrival: the flush-centric
     * rules (XL01 redundant writeback, XL03 flush-unmodified, XL04
     * no-op fence, XL07 epoch order, XL08 commit-var inference) are
     * suppressed — every flush is equally dead weight, not a
     * persistency mistake, and the solo-persist publish signature
     * XL08 keys on does not exist — and the frontier dataflow
     * mirrors the flush-free shadow PM.
     */
    bool flushFree = false;
};

/**
 * One address the WITCHER-style inference pass tracked: a location
 * the program stores to and persists, with how often the store was
 * the *only* data a fence retired (the atomic-publish signature a
 * commit variable exhibits).
 */
struct CommitVarCandidate
{
    Addr addr = 0;
    std::uint32_t size = 0;
    /** Detectable stores to this address. */
    std::uint32_t stores = 0;
    /** Stores whose retiring fence persisted nothing else. */
    std::uint32_t soloPersists = 0;
    /** The address ever became durable (retired by some fence). */
    bool everDurable = false;
    /** Covered by a CommitVar or CommitRange annotation. */
    bool annotated = false;
    std::uint32_t lastStoreSeq = 0;
    trace::SrcLoc lastStore;

    /**
     * Behaves like a commit variable: repeatedly stored, every store
     * immediately and solely persisted, atomically writable.
     */
    bool
    looksLikeCommitVar() const
    {
        return stores >= 2 && soloPersists == stores && size <= 16;
    }
};

/** Result of the commit-variable inference pass. */
struct CommitVarInferenceResult
{
    /** Every store target the pass tracked, in address order. */
    std::vector<CommitVarCandidate> candidates;
    /** The trace registered at least one commit variable. */
    bool annotationsPresent = false;
};

/**
 * Infer likely commit variables from trace invariants (the WITCHER
 * direction, PAPERS.md): a commit variable is a fixed address the
 * program stores to repeatedly where each store is the last — and
 * only — data the next fence makes durable. Under the flush-free
 * persistency model the signature is meaningless (every store is
 * instantly durable) and the result is empty.
 */
CommitVarInferenceResult inferCommitVars(const trace::TraceBuffer &pre,
                                         unsigned granularity,
                                         bool flushFree = false);

/**
 * Per-failure-point prunability verdicts. A point is pruned when an
 * earlier kept point at the same ordering-point source location had
 * an identical frontier signature: the in-flight write set and the
 * commit-inconsistency set, keyed by writer source location and
 * allocation region, are equal, so the post-failure execution can
 * only rediscover findings the kept representative already produced
 * (findings deduplicate by source location, and recovery-failure
 * reports carry the failure point's location, which is shared within
 * the group).
 */
struct PruneVerdicts
{
    /** A pruned point and the kept point that stands in for it. */
    struct Pruned
    {
        std::uint32_t fp = 0;
        std::uint32_t keptRep = 0;
    };

    /** Points to run, in plan order (subset of the input). */
    std::vector<std::uint32_t> kept;
    /** Points proven statically redundant. */
    std::vector<Pruned> pruned;

    double
    pruneRatio() const
    {
        std::size_t total = kept.size() + pruned.size();
        return total ? static_cast<double>(pruned.size()) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Everything one lint pass produced. */
struct LintReport
{
    std::vector<Diagnostic> diagnostics;
    /** Diagnostic count per rule (indexed by Rule). */
    std::array<std::size_t, ruleCount> hits{};
    /** Rules that were enabled for this pass. */
    std::uint32_t rules = allRules;
    /** Prunability verdicts (empty when no plan was supplied). */
    PruneVerdicts prune;
    /** Failure points the prune pass considered. */
    std::size_t pointsConsidered = 0;

    /** Diagnostics of @p r found. */
    std::size_t
    count(Rule r) const
    {
        return hits[static_cast<std::size_t>(r)];
    }
};

/**
 * Run the lint pass over @p pre. When @p plannedPoints is non-null
 * (the campaign's planned failure points, ascending), prunability
 * verdicts are computed as well.
 */
LintReport runLint(const trace::TraceBuffer &pre, const LintConfig &cfg,
                   const std::vector<std::uint32_t> *plannedPoints =
                       nullptr);

/**
 * Compute only the prunability verdicts for @p points (ascending seq
 * order, as produced by core::planFailurePoints) at @p granularity.
 * @p flushFree selects the eADR frontier semantics and must match the
 * campaign's persistency model.
 */
PruneVerdicts computePruneVerdicts(const trace::TraceBuffer &pre,
                                   const std::vector<std::uint32_t> &points,
                                   unsigned granularity,
                                   bool flushFree = false);

/** Multi-line human-readable report (the lint scoreboard). */
std::string renderText(const LintReport &rep);

/**
 * Write the report as one JSON object ("xfd-lint-v1"): diagnostics,
 * per-rule hit counts, and the prune verdict summary. Usable both as
 * a standalone document (--lint-json) and as the "lint" section of
 * the stats document.
 */
void writeLintJson(const LintReport &rep, obs::JsonWriter &w);

} // namespace xfd::lint

#endif // XFD_LINT_LINT_HH
