#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace xfd::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

void
JsonWriter::element()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (!hasElement.empty()) {
        if (hasElement.back())
            out << ',';
        hasElement.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    element();
    out << '{';
    inObject.push_back(true);
    hasElement.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (inObject.empty() || !inObject.back())
        panic("JsonWriter::endObject outside an object");
    out << '}';
    inObject.pop_back();
    hasElement.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    element();
    out << '[';
    inObject.push_back(false);
    hasElement.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (inObject.empty() || inObject.back())
        panic("JsonWriter::endArray outside an array");
    out << ']';
    inObject.pop_back();
    hasElement.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (inObject.empty() || !inObject.back())
        panic("JsonWriter::key outside an object");
    element();
    out << '"' << jsonEscape(k) << "\":";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    element();
    out << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    element();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out << "null";
        return *this;
    }
    // Shortest representation that round-trips a double.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    double parsed = std::strtod(buf, nullptr);
    for (int prec = 1; prec < 17; prec++) {
        char probe[32];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
        if (std::strtod(probe, nullptr) == parsed) {
            out << probe;
            return *this;
        }
    }
    out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    element();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    element();
    out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    element();
    out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    element();
    out << "null";
    return *this;
}

} // namespace xfd::obs
