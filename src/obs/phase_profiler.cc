#include "obs/phase_profiler.hh"

#include <algorithm>

namespace xfd::obs
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::TraceCapture: return "trace_capture";
      case Phase::Plan: return "plan";
      case Phase::LintPrune: return "lint_prune";
      case Phase::Restore: return "restore";
      case Phase::RecoveryExec: return "recovery_exec";
      case Phase::Classify: return "classify";
      case Phase::Oracle: return "oracle";
    }
    return "?";
}

const char *
phaseDesc(Phase p)
{
    switch (p) {
      case Phase::TraceCapture:
        return "pre-failure stage under tracing";
      case Phase::Plan:
        return "failure-point planning + write-log indexing";
      case Phase::LintPrune:
        return "static frontier-signature pruning";
      case Phase::Restore:
        return "shadow/image advance + exec-pool restore";
      case Phase::RecoveryExec:
        return "post-failure stage execution";
      case Phase::Classify:
        return "post-trace replay + perf scan";
      case Phase::Oracle:
        return "crash-state oracle enumeration";
    }
    return "";
}

void
PhaseTotals::merge(const PhaseTotals &o)
{
    for (std::size_t i = 0; i < phaseCount; i++) {
        seconds[i] += o.seconds[i];
        count[i] += o.count[i];
    }
}

double
PhaseTotals::total() const
{
    double sum = 0;
    for (double s : seconds)
        sum += s;
    return sum;
}

double
PhaseTotals::backendAttributed() const
{
    return seconds[static_cast<std::size_t>(Phase::Restore)] +
           seconds[static_cast<std::size_t>(Phase::Classify)];
}

double
PhaseTotals::attributionOf(double backend_seconds) const
{
    double attributed = backendAttributed();
    double denom = std::max(backend_seconds, attributed);
    return denom > 0 ? attributed / denom : 1.0;
}

void
exportPhaseStats(StatsRegistry &reg, const PhaseTotals &t,
                 double backend_seconds)
{
    for (std::size_t i = 0; i < phaseCount; i++) {
        auto p = static_cast<Phase>(i);
        reg.scalar(std::string("campaign.phase.") + phaseName(p) +
                       "_seconds",
                   phaseDesc(p))
            .set(t.seconds[i]);
        reg.scalar(std::string("campaign.phase.") + phaseName(p) +
                       "_count",
                   "scoped-timer intervals attributed to this phase")
            .set(static_cast<double>(t.count[i]));
    }
    reg.scalar("campaign.phase.total_seconds",
               "seconds attributed to any phase")
        .set(t.total());
    reg.scalar("campaign.phase.backend_attribution",
               "fraction of backend seconds attributed to "
               "restore + classify")
        .set(t.attributionOf(backend_seconds));
}

void
writePhaseJson(const PhaseTotals &t, JsonWriter &w)
{
    w.beginObject();
    for (std::size_t i = 0; i < phaseCount; i++) {
        if (!t.count[i])
            continue;
        w.key(phaseName(static_cast<Phase>(i))).beginObject();
        w.field("seconds", t.seconds[i]);
        w.field("count", t.count[i]);
        w.endObject();
    }
    w.endObject();
}

} // namespace xfd::obs
