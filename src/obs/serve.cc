#include "obs/serve.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "obs/json.hh"

namespace xfd::obs
{

LiveServer::LiveServer(LiveMetrics &m, unsigned window_seconds)
    : metrics(m), windowSeconds(window_seconds)
{
}

LiveServer::~LiveServer()
{
    stop();
}

bool
LiveServer::start(std::uint16_t port, std::string *err)
{
    auto fail = [&](const char *what) {
        if (err)
            *err = strprintf("%s: %s", what, std::strerror(errno));
        if (listenFd >= 0) {
            ::close(listenFd);
            listenFd = -1;
        }
        return false;
    };

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        return fail("bind");
    }
    if (::listen(listenFd, 8) < 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len) < 0) {
        return fail("getsockname");
    }
    boundPort = ntohs(addr.sin_port);

    live.store(true);
    acceptor = std::thread([this] { serveLoop(); });
    return true;
}

void
LiveServer::stop()
{
    if (!live.exchange(false)) {
        if (acceptor.joinable())
            acceptor.join();
        return;
    }
    // Unblock accept(): shutdown() makes it return on Linux; close()
    // finishes the job.
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
    if (acceptor.joinable())
        acceptor.join();
    listenFd = -1;
}

void
LiveServer::serveLoop()
{
    while (live.load()) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // Closed or shut down: we are done.
            return;
        }
        handleClient(fd);
        ::close(fd);
    }
}

std::string
LiveServer::renderBody(const std::string &path)
{
    std::ostringstream body;
    if (path == "/metrics") {
        metrics.snapshot(windowSeconds).writePrometheus(body);
    } else if (path == "/snapshot") {
        JsonWriter w(body);
        metrics.snapshot(windowSeconds).writeJson(w);
        body << '\n';
    } else if (path == "/") {
        body << "xfdetect live telemetry\n"
                "  /metrics   Prometheus text format\n"
                "  /snapshot  JSON snapshot\n";
    } else {
        return "";
    }
    return body.str();
}

void
LiveServer::handleClient(int fd)
{
    // Read until the end of the request head (or a small cap — the
    // requests we answer have no interesting body).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16384) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }

    std::string method, path;
    if (std::size_t sp1 = req.find(' '); sp1 != std::string::npos) {
        method = req.substr(0, sp1);
        if (std::size_t sp2 = req.find(' ', sp1 + 1);
            sp2 != std::string::npos) {
            path = req.substr(sp1 + 1, sp2 - sp1 - 1);
        }
    }
    if (std::size_t q = path.find('?'); q != std::string::npos)
        path.resize(q);

    std::string status = "200 OK";
    std::string type = path == "/snapshot"
                           ? "application/json; charset=utf-8"
                           : "text/plain; version=0.0.4; "
                             "charset=utf-8";
    std::string body;
    if (method != "GET" && method != "HEAD") {
        status = "405 Method Not Allowed";
        body = "only GET is served here\n";
    } else {
        body = renderBody(path);
        if (body.empty()) {
            status = "404 Not Found";
            body = "try /metrics or /snapshot\n";
        }
    }

    std::string resp = strprintf(
        "HTTP/1.0 %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        status.c_str(), type.c_str(), body.size());
    if (method != "HEAD")
        resp += body;

    std::size_t off = 0;
    while (off < resp.size()) {
        ssize_t n = ::write(fd, resp.data() + off, resp.size() - off);
        if (n <= 0)
            break;
        off += static_cast<std::size_t>(n);
    }
}

LiveSession::LiveSession(LiveMetrics &m, const Options &o)
    : metrics(m), opts(o)
{
    metrics.setEnabled(true);
    if (opts.serve) {
        server = std::make_unique<LiveServer>(metrics,
                                              opts.windowSeconds);
        std::string err;
        if (!server->start(opts.port, &err)) {
            error_ = strprintf("--live-port: %s", err.c_str());
            server.reset();
            return;
        }
        inform("live telemetry on http://127.0.0.1:%u/metrics",
               static_cast<unsigned>(server->port()));
    }
    if (!opts.jsonlPath.empty()) {
        jsonl.open(opts.jsonlPath, std::ios::app);
        if (!jsonl) {
            error_ = strprintf("--live-jsonl: cannot write %s",
                               opts.jsonlPath.c_str());
            return;
        }
        streamer = std::thread([this] { streamLoop(); });
    }
}

LiveSession::~LiveSession()
{
    {
        std::lock_guard<std::mutex> guard(lock);
        stopping = true;
    }
    wake.notify_all();
    if (streamer.joinable())
        streamer.join();
    if (jsonl.is_open()) {
        // A final line so campaigns shorter than the streaming period
        // still leave one complete snapshot behind.
        writeSnapshotLine();
        jsonl.close();
    }
    if (server)
        server->stop();
    metrics.setEnabled(false);
}

void
LiveSession::writeSnapshotLine()
{
    JsonWriter w(jsonl);
    metrics.snapshot(opts.windowSeconds).writeJson(w);
    jsonl << '\n';
    jsonl.flush();
}

void
LiveSession::streamLoop()
{
    std::unique_lock<std::mutex> guard(lock);
    while (!stopping) {
        wake.wait_for(guard, std::chrono::seconds(1));
        if (stopping)
            break;
        guard.unlock();
        writeSnapshotLine();
        guard.lock();
    }
}

} // namespace xfd::obs
