#include "obs/progress.hh"

#include "common/logging.hh"

namespace xfd::obs
{

std::string
formatProgress(const char *unit, std::size_t done, std::size_t total,
               std::size_t bugs, double eta_seconds)
{
    return strprintf("[%s %zu/%zu, %zu bugs, ETA %.1fs]", unit, done,
                     total, bugs, eta_seconds);
}

double
etaSeconds(double seconds_since_first, std::size_t done,
           std::size_t done_first, std::size_t total)
{
    if (done <= done_first || done >= total ||
        seconds_since_first <= 0) {
        return 0;
    }
    double rate = static_cast<double>(done - done_first) /
                  seconds_since_first;
    return static_cast<double>(total - done) / rate;
}

ProgressMeter::ProgressMeter(const char *u, double min_interval)
    : unit(u), minInterval(min_interval),
      lastPrint(std::chrono::steady_clock::now())
{
}

void
ProgressMeter::update(std::size_t done, std::size_t total,
                      std::size_t bugs)
{
    if (!verbose() || total == 0)
        return;
    std::lock_guard<std::mutex> guard(lock);
    auto now = std::chrono::steady_clock::now();
    if (!everUpdated) {
        // The meter is typically constructed before the campaign
        // even captures its pre-failure trace; measuring the
        // per-unit rate from construction would bill trace capture,
        // planning and lint pruning to the units and inflate the
        // ETA. Anchor at the first update instead.
        everUpdated = true;
        firstUpdate = now;
        firstDone = done;
    }
    double since_last =
        std::chrono::duration<double>(now - lastPrint).count();
    bool final = done >= total;
    if (!final && everPrinted && since_last < minInterval)
        return;
    double since_first =
        std::chrono::duration<double>(now - firstUpdate).count();
    double eta = etaSeconds(since_first, done, firstDone, total);
    inform("progress: %s",
           formatProgress(unit, done, total, bugs, eta).c_str());
    lastPrint = now;
    everPrinted = true;
    printed++;
}

} // namespace xfd::obs
