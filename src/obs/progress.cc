#include "obs/progress.hh"

#include "common/logging.hh"

namespace xfd::obs
{

std::string
formatProgress(const char *unit, std::size_t done, std::size_t total,
               std::size_t bugs, double eta_seconds)
{
    return strprintf("[%s %zu/%zu, %zu bugs, ETA %.1fs]", unit, done,
                     total, bugs, eta_seconds);
}

ProgressMeter::ProgressMeter(const char *u, double min_interval)
    : unit(u), minInterval(min_interval),
      start(std::chrono::steady_clock::now()), lastPrint(start)
{
}

void
ProgressMeter::update(std::size_t done, std::size_t total,
                      std::size_t bugs)
{
    if (!verbose() || total == 0)
        return;
    std::lock_guard<std::mutex> guard(lock);
    auto now = std::chrono::steady_clock::now();
    double since_last =
        std::chrono::duration<double>(now - lastPrint).count();
    bool final = done >= total;
    if (!final && everPrinted && since_last < minInterval)
        return;
    double elapsed = std::chrono::duration<double>(now - start).count();
    double eta =
        done ? elapsed * static_cast<double>(total - done) / done : 0;
    inform("progress: %s",
           formatProgress(unit, done, total, bugs, eta).c_str());
    lastPrint = now;
    everPrinted = true;
    printed++;
}

} // namespace xfd::obs
