/**
 * @file
 * Span/phase timing for detection campaigns.
 *
 * A Timeline collects named spans (begin time + duration, microsecond
 * resolution on the steady clock) and instant events, each attributed
 * to a registered track (thread). Two exporters:
 *
 *  - writeJsonl():       one JSON object per line — grep/jq-friendly;
 *  - writeChromeTrace(): the Chrome trace_event JSON-array format,
 *    loadable in chrome://tracing or https://ui.perfetto.dev, with
 *    thread_name metadata so runParallel workers render as parallel
 *    tracks.
 *
 * Recording is thread-safe (one mutex around the event vector; spans
 * record once at scope exit, so the lock is far off any hot path) and
 * free when disabled: SpanScope on a null/disabled timeline is a pair
 * of branches.
 */

#ifndef XFD_OBS_TIMELINE_HH
#define XFD_OBS_TIMELINE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace xfd::obs
{

/** One recorded span or instant event. */
struct TimelineEvent
{
    std::string name;
    /** Category ("phase", "fp", "finding", ...); a string literal. */
    const char *cat = "";
    /** Track id from Timeline::registerTrack (0 = main). */
    int tid = 0;
    /** Start, microseconds since the timeline epoch. */
    std::int64_t tsUs = 0;
    /** Duration in microseconds; < 0 marks an instant event. */
    std::int64_t durUs = -1;
    /**
     * Annotation key/value pairs, exported as the Chrome trace_event
     * "args" object (and an "args" object in the JSONL export).
     * Finding-provenance instants carry their causal chain here.
     */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Collects spans and instants for one campaign. */
class Timeline
{
  public:
    Timeline();

    /** Track 0 ("main") is pre-registered. */
    int registerTrack(const std::string &label);

    /** Microseconds since the timeline epoch (monotonic). */
    std::int64_t nowUs() const;

    /** Record a completed span. */
    void recordSpan(std::string name, const char *cat, int tid,
                    std::int64_t ts_us, std::int64_t dur_us);

    /** Record an instant event, optionally with annotation args. */
    void recordInstant(
        std::string name, const char *cat, int tid, std::int64_t ts_us,
        std::vector<std::pair<std::string, std::string>> args = {});

    /** Disabled timelines record nothing (default: enabled). */
    void setEnabled(bool on) { recording = on; }
    bool enabled() const { return recording; }

    /** Events sorted by (ts, tid); snapshot under the lock. */
    std::vector<TimelineEvent> events() const;

    /** Registered track labels, index = tid. */
    std::vector<std::string> tracks() const;

    std::size_t size() const;
    void clear();

    /** Export every event as one JSON object per line. */
    void writeJsonl(std::ostream &os) const;

    /**
     * Export the Chrome trace_event format: an object with a
     * "traceEvents" array of "X" (complete), "i" (instant) and "M"
     * (thread_name metadata) events.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::chrono::steady_clock::time_point epoch;
    bool recording = true;
    mutable std::mutex lock;
    std::vector<TimelineEvent> evs;
    std::vector<std::string> trackLabels;
};

/**
 * RAII span: measures construction-to-destruction and records it on
 * the timeline. A null timeline (or a disabled one) makes this a
 * no-op.
 */
class SpanScope
{
  public:
    SpanScope(Timeline *tl, std::string name, const char *cat,
              int tid = 0)
        : timeline(tl && tl->enabled() ? tl : nullptr),
          spanName(std::move(name)), category(cat), track(tid),
          startUs(timeline ? timeline->nowUs() : 0)
    {
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope()
    {
        if (timeline) {
            timeline->recordSpan(std::move(spanName), category, track,
                                 startUs, timeline->nowUs() - startUs);
        }
    }

  private:
    Timeline *timeline;
    std::string spanName;
    const char *category;
    int track;
    std::int64_t startUs;
};

} // namespace xfd::obs

#endif // XFD_OBS_TIMELINE_HH
