#include "obs/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xfd::obs
{

void
SampleMoments::note(double v, std::uint64_t n)
{
    if (count == 0) {
        minVal = v;
        maxVal = v;
    } else {
        minVal = std::min(minVal, v);
        maxVal = std::max(maxVal, v);
    }
    count += n;
    sum += v * n;
    sqsum += v * v * n;
}

double
SampleMoments::variance() const
{
    if (count < 2)
        return 0;
    double mu = mean();
    double var = sqsum / count - mu * mu;
    return var > 0 ? var : 0;
}

void
Scalar::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("type", "scalar");
    w.field("desc", desc());
    w.field("value", val);
    w.endObject();
}

Distribution::Distribution(std::string name, std::string desc,
                           double lo_, double hi_, unsigned buckets)
    : StatBase(std::move(name), std::move(desc)), lo(lo_), hi(hi_)
{
    if (buckets == 0 || hi <= lo)
        panic("Distribution %s: bad bucket parameters", this->name().c_str());
    counts.assign(buckets, 0);
    bucketSize = (hi - lo) / buckets;
}

void
Distribution::sample(double v, std::uint64_t n)
{
    m.note(v, n);
    if (v < lo) {
        underflow += n;
    } else if (v >= hi) {
        overflow += n;
    } else {
        auto i = static_cast<std::size_t>((v - lo) / bucketSize);
        counts[std::min(i, counts.size() - 1)] += n;
    }
}

void
Distribution::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("type", "distribution");
    w.field("desc", desc());
    w.field("count", m.count);
    w.field("min", m.count ? m.minVal : 0.0);
    w.field("max", m.count ? m.maxVal : 0.0);
    w.field("mean", m.mean());
    w.field("stddev", std::sqrt(m.variance()));
    w.field("bucket_lo", lo);
    w.field("bucket_hi", hi);
    w.field("underflow", underflow);
    w.field("overflow", overflow);
    w.key("buckets").beginArray();
    for (std::uint64_t c : counts)
        w.value(c);
    w.endArray();
    w.endObject();
}

Histogram::Histogram(std::string name, std::string desc,
                     unsigned buckets)
    : StatBase(std::move(name), std::move(desc))
{
    if (buckets == 0 || buckets > 64)
        panic("Histogram %s: bad bucket count", this->name().c_str());
    counts.assign(buckets, 0);
}

void
Histogram::sample(double v, std::uint64_t n)
{
    if (v < 0)
        v = 0;
    m.note(v, n);
    std::size_t i = 0;
    if (v >= 2) {
        i = static_cast<std::size_t>(std::log2(v));
        i = std::min(i, counts.size() - 1);
    }
    counts[i] += n;
}

void
Histogram::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("type", "histogram");
    w.field("desc", desc());
    w.field("count", m.count);
    w.field("min", m.count ? m.minVal : 0.0);
    w.field("max", m.count ? m.maxVal : 0.0);
    w.field("mean", m.mean());
    w.field("stddev", std::sqrt(m.variance()));
    // Trailing all-zero buckets are elided; bucket i spans
    // [2^i, 2^(i+1)) with bucket 0 also absorbing [0, 2).
    std::size_t last = counts.size();
    while (last > 1 && counts[last - 1] == 0)
        last--;
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < last; i++)
        w.value(counts[i]);
    w.endArray();
    w.endObject();
}

void
Formula::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("type", "formula");
    w.field("desc", desc());
    w.field("value", value());
    w.endObject();
}

template <typename T, typename... Args>
T &
StatsRegistry::add(const std::string &name, Args &&...args)
{
    auto it = byName.find(name);
    if (it != byName.end()) {
        auto *existing = dynamic_cast<T *>(it->second.get());
        if (!existing)
            panic("stat %s re-registered with a different type",
                  name.c_str());
        return *existing;
    }
    auto stat = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *stat;
    order.push_back(stat.get());
    byName.emplace(name, std::move(stat));
    return ref;
}

Scalar &
StatsRegistry::scalar(const std::string &name, const std::string &desc)
{
    return add<Scalar>(name, desc);
}

Distribution &
StatsRegistry::distribution(const std::string &name,
                            const std::string &desc, double lo,
                            double hi, unsigned buckets)
{
    return add<Distribution>(name, desc, lo, hi, buckets);
}

Histogram &
StatsRegistry::histogram(const std::string &name,
                         const std::string &desc, unsigned buckets)
{
    return add<Histogram>(name, desc, buckets);
}

Formula &
StatsRegistry::formula(const std::string &name, const std::string &desc,
                       std::function<double()> fn)
{
    return add<Formula>(name, desc, std::move(fn));
}

const StatBase *
StatsRegistry::find(const std::string &name) const
{
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : it->second.get();
}

double
StatsRegistry::value(const std::string &name) const
{
    const StatBase *s = find(name);
    if (auto *sc = dynamic_cast<const Scalar *>(s))
        return sc->value();
    if (auto *f = dynamic_cast<const Formula *>(s))
        return f->value();
    return 0;
}

void
StatsRegistry::clear()
{
    order.clear();
    byName.clear();
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const StatBase *s : order) {
        w.key(s->name());
        s->writeJson(w);
    }
    w.endObject();
}

} // namespace xfd::obs
