/**
 * @file
 * Campaign phase attribution.
 *
 * The campaign driver's wall time divides into a handful of phases —
 * trace capture, failure-point planning, lint pruning, exec-pool
 * restore, recovery execution, post-trace classification, and (in
 * differential campaigns) oracle enumeration. PhaseTotals accumulates
 * seconds and scoped-timer counts per phase; the driver threads one
 * through each worker and merges them like the rest of CampaignStats,
 * so BENCH_fig12's dominant backend_ms column finally decomposes into
 * named phases instead of one opaque number.
 *
 * The accounting is CPU-seconds per phase: a serial campaign's phase
 * totals sum to its wall breakdown exactly (restore + classify ==
 * backendSeconds by construction — the driver feeds both from the
 * same measured interval), while a parallel campaign's totals exceed
 * wall time because workers overlap. Scoped-timer *counts* are
 * deterministic and identical between serial and parallel runs.
 *
 * All timing uses the steady clock (see DESIGN.md: wall-clock time
 * appears in exactly one exported field, the live snapshot's
 * wall_time).
 */

#ifndef XFD_OBS_PHASE_PROFILER_HH
#define XFD_OBS_PHASE_PROFILER_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "obs/json.hh"
#include "obs/stats.hh"

namespace xfd::obs
{

/** The named phases every campaign millisecond is attributed to. */
enum class Phase : std::uint8_t
{
    /** Pre-failure stage running under tracing. */
    TraceCapture,
    /** Failure-point planning + write-log page indexing. */
    Plan,
    /** Frontier-signature analysis (batch planning). */
    LintPrune,
    /** Shadow/image advance + exec-pool restore (backend half 1). */
    Restore,
    /** Post-failure stage execution on the reconstructed image. */
    RecoveryExec,
    /** Post-trace replay against the shadow + the final perf scan
     *  (backend half 2). */
    Classify,
    /** Crash-state oracle enumeration (differential campaigns only). */
    Oracle,
};

inline constexpr std::size_t phaseCount = 7;

/** Stable identifier of @p p ("trace_capture", ...). */
const char *phaseName(Phase p);

/** One-line description of @p p for stat registration. */
const char *phaseDesc(Phase p);

/** Per-phase accumulated seconds and timer counts; mergeable. */
struct PhaseTotals
{
    std::array<double, phaseCount> seconds{};
    std::array<std::uint64_t, phaseCount> count{};

    /** Attribute one measured interval of @p sec seconds to @p p. */
    void
    note(Phase p, double sec)
    {
        auto i = static_cast<std::size_t>(p);
        seconds[i] += sec;
        count[i]++;
    }

    /** Fold another worker's totals into this one. */
    void merge(const PhaseTotals &o);

    /** Sum of all phase seconds. */
    double total() const;

    /**
     * The share attributed to CampaignStats::backendSeconds: restore
     * plus classify, which wrap exactly the intervals the driver adds
     * to that counter.
     */
    double backendAttributed() const;

    /**
     * backendAttributed() as a fraction of @p backend_seconds. The
     * denominator is clamped up to backendAttributed(): in a parallel
     * campaign the phase totals are CPU-seconds summed across workers
     * while CampaignStats::backendSeconds is not (the driver only
     * accumulates it serially), so a raw quotient would be wildly >1.
     * Serial campaigns are unaffected — there the two sides are equal
     * by construction, and under-attribution still reads as <1.
     */
    double attributionOf(double backend_seconds) const;
};

/**
 * RAII scoped timer: attributes construction-to-destruction (steady
 * clock) to one phase. A null totals pointer makes it a no-op with no
 * clock reads.
 */
class ScopedPhase
{
  public:
    ScopedPhase(PhaseTotals *t, Phase p)
        : totals(t), phase(p),
          start(t ? std::chrono::steady_clock::now()
                  : std::chrono::steady_clock::time_point{})
    {
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

    ~ScopedPhase() { stop(); }

    /** Record now; further stop() calls are no-ops. @return seconds. */
    double
    stop()
    {
        if (!totals)
            return 0;
        double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
        totals->note(phase, sec);
        totals = nullptr;
        return sec;
    }

  private:
    PhaseTotals *totals;
    Phase phase;
    std::chrono::steady_clock::time_point start;
};

/**
 * Register campaign.phase.* scalars for @p t into @p reg:
 * per-phase seconds and counts, the phase-seconds total, and
 * campaign.phase.backend_attribution — the fraction of
 * @p backend_seconds the restore/classify phases account for.
 */
void exportPhaseStats(StatsRegistry &reg, const PhaseTotals &t,
                      double backend_seconds);

/**
 * Emit `{ "<phase>": {"seconds": s, "count": n}, ... }` for the
 * stats-JSON per-phase breakdown. Phases with a zero count are
 * skipped (an all-zero campaign writes an empty object).
 */
void writePhaseJson(const PhaseTotals &t, JsonWriter &w);

} // namespace xfd::obs

#endif // XFD_OBS_PHASE_PROFILER_HH
