/**
 * @file
 * Serving live telemetry: a minimal HTTP endpoint and a JSONL
 * streamer over obs::LiveMetrics.
 *
 * LiveServer is a deliberately small HTTP/1.0-style responder on raw
 * POSIX sockets (no dependencies): one acceptor thread, one request
 * per connection, Connection: close. Endpoints:
 *
 *   GET /metrics   Prometheus text exposition format
 *   GET /snapshot  one xfd-live-v1 JSON document
 *   GET /          plain-text index of the above
 *
 * LiveSession is what the campaign front ends actually hold: it
 * enables a LiveMetrics registry, optionally starts a LiveServer
 * (--live-port) and/or a once-per-second JSONL streamer
 * (--live-jsonl), and tears all of it down — after emitting one
 * final snapshot line so even sub-second campaigns leave a stream —
 * when destroyed.
 */

#ifndef XFD_OBS_SERVE_HH
#define XFD_OBS_SERVE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/live.hh"

namespace xfd::obs
{

/** Minimal HTTP endpoint over one LiveMetrics registry. */
class LiveServer
{
  public:
    explicit LiveServer(LiveMetrics &metrics,
                        unsigned window_seconds = 10);
    ~LiveServer();

    LiveServer(const LiveServer &) = delete;
    LiveServer &operator=(const LiveServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral; see port()) and start
     * the acceptor thread. @return false with *err set on failure.
     */
    bool start(std::uint16_t port, std::string *err = nullptr);

    /** The bound port (resolves port 0), 0 when not started. */
    std::uint16_t port() const { return boundPort; }

    bool running() const { return live.load(); }

    /** Stop accepting and join the acceptor thread (idempotent). */
    void stop();

    /** Render the response body for @p path ("" = unknown path). */
    std::string renderBody(const std::string &path);

  private:
    void serveLoop();
    void handleClient(int fd);

    LiveMetrics &metrics;
    unsigned windowSeconds;
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::atomic<bool> live{false};
    std::thread acceptor;
};

/**
 * One campaign run's live-telemetry lifetime: enables @p metrics,
 * starts the configured outputs, and reverses it all on destruction.
 */
class LiveSession
{
  public:
    struct Options
    {
        /** Serve HTTP when true (port 0 binds an ephemeral port). */
        bool serve = false;
        std::uint16_t port = 0;
        /** Stream one snapshot line per second when non-empty. */
        std::string jsonlPath;
        /** Histogram merge window for snapshots. */
        unsigned windowSeconds = 10;
    };

    LiveSession(LiveMetrics &metrics, const Options &opts);
    ~LiveSession();

    LiveSession(const LiveSession &) = delete;
    LiveSession &operator=(const LiveSession &) = delete;

    /** False when the server failed to bind or the file to open. */
    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /** Bound HTTP port (0 when not serving). */
    std::uint16_t port() const
    {
        return server ? server->port() : 0;
    }

  private:
    void streamLoop();
    void writeSnapshotLine();

    LiveMetrics &metrics;
    Options opts;
    std::string error_;
    std::unique_ptr<LiveServer> server;
    std::ofstream jsonl;
    std::thread streamer;
    std::mutex lock;
    std::condition_variable wake;
    bool stopping = false;
};

} // namespace xfd::obs

#endif // XFD_OBS_SERVE_HH
