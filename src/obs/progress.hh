/**
 * @file
 * Periodic progress reporting for long campaigns.
 *
 * The driver invokes an observer callback after every failure point;
 * ProgressMeter rate-limits those calls into an occasional
 *
 *   progress: [fp 37/214, 12 bugs, ETA 4.1s]
 *
 * line on stderr (through the thread-safe logging sink, so worker
 * threads never interleave bytes). Silent when verbose() is off.
 */

#ifndef XFD_OBS_PROGRESS_HH
#define XFD_OBS_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace xfd::obs
{

/** Render one progress line (exposed for tests). */
std::string formatProgress(const char *unit, std::size_t done,
                           std::size_t total, std::size_t bugs,
                           double eta_seconds);

/** Rate-limited campaign progress printer; thread-safe. */
class ProgressMeter
{
  public:
    /**
     * @param unit          label of the progress unit ("fp")
     * @param min_interval  minimum seconds between printed lines
     */
    explicit ProgressMeter(const char *unit = "fp",
                           double min_interval = 0.25);

    /**
     * Note progress: @p done of @p total units finished, @p bugs
     * findings so far. Prints when the rate limit allows (the final
     * update always prints).
     */
    void update(std::size_t done, std::size_t total, std::size_t bugs);

    /** Lines actually printed (rate-limit observability). */
    std::size_t linesPrinted() const { return printed; }

  private:
    const char *unit;
    double minInterval;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point lastPrint;
    bool everPrinted = false;
    std::size_t printed = 0;
    std::mutex lock;
};

} // namespace xfd::obs

#endif // XFD_OBS_PROGRESS_HH
