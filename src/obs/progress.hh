/**
 * @file
 * Periodic progress reporting for long campaigns.
 *
 * The driver invokes an observer callback after every scheduled item
 * (done/total are failure points *covered*, so a batched group's
 * members all land at once); ProgressMeter rate-limits those calls
 * into an occasional
 *
 *   progress: [fp 37/214, 12 bugs, ETA 4.1s]
 *
 * line on stderr (through the thread-safe logging sink, so worker
 * threads never interleave bytes). Silent when verbose() is off.
 */

#ifndef XFD_OBS_PROGRESS_HH
#define XFD_OBS_PROGRESS_HH

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace xfd::obs
{

/** Render one progress line (exposed for tests). */
std::string formatProgress(const char *unit, std::size_t done,
                           std::size_t total, std::size_t bugs,
                           double eta_seconds);

/**
 * ETA from the per-unit rate observed *between updates*: the first
 * update() anchors (t0, done0) and the remaining work is priced at
 * (done - done0) / seconds-since-t0. Anchoring at construction
 * instead would fold the pre-failure stage, failure-point planning
 * and the batch-plan analysis pass into the per-point rate and
 * overestimate the remaining time by exactly that share. The driver
 * fires a zero tick ({0, total, 0}) right before its per-point loop
 * so the anchor lands at loop start and the first finished unit —
 * a whole signature group under --backend=batched, whose members
 * all count at once — contributes to the rate. 0 until a second
 * distinct done-count arrives.
 */
double etaSeconds(double seconds_since_first, std::size_t done,
                  std::size_t done_first, std::size_t total);

/** Rate-limited campaign progress printer; thread-safe. */
class ProgressMeter
{
  public:
    /**
     * @param unit          label of the progress unit ("fp")
     * @param min_interval  minimum seconds between printed lines
     */
    explicit ProgressMeter(const char *unit = "fp",
                           double min_interval = 0.25);

    /**
     * Note progress: @p done of @p total units finished, @p bugs
     * findings so far. Prints when the rate limit allows (the final
     * update always prints).
     */
    void update(std::size_t done, std::size_t total, std::size_t bugs);

    /** Lines actually printed (rate-limit observability). */
    std::size_t linesPrinted() const { return printed; }

  private:
    const char *unit;
    double minInterval;
    std::chrono::steady_clock::time_point lastPrint;
    /** Rate anchor: time and done-count of the first update(). */
    std::chrono::steady_clock::time_point firstUpdate;
    std::size_t firstDone = 0;
    bool everUpdated = false;
    bool everPrinted = false;
    std::size_t printed = 0;
    std::mutex lock;
};

} // namespace xfd::obs

#endif // XFD_OBS_PROGRESS_HH
