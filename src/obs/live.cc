#include "obs/live.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xfd::obs
{

RateWindow::RateWindow(unsigned window_seconds)
    : buckets(std::max(1u, window_seconds), 0)
{
}

void
RateWindow::roll(std::int64_t now_sec)
{
    if (now_sec <= head)
        return;
    auto n = static_cast<std::int64_t>(buckets.size());
    if (now_sec - head >= n) {
        std::fill(buckets.begin(), buckets.end(), 0);
    } else {
        for (std::int64_t s = head + 1; s <= now_sec; s++)
            buckets[static_cast<std::size_t>(s % n)] = 0;
    }
    head = now_sec;
}

void
RateWindow::note(std::uint64_t n, std::int64_t now_sec)
{
    roll(now_sec);
    auto cap = static_cast<std::int64_t>(buckets.size());
    buckets[static_cast<std::size_t>(head % cap)] += n;
    lifetime += n;
}

std::uint64_t
RateWindow::sumLast(unsigned k, std::int64_t now_sec)
{
    roll(now_sec);
    auto cap = static_cast<std::int64_t>(buckets.size());
    k = std::min<unsigned>(k, static_cast<unsigned>(cap));
    std::uint64_t sum = 0;
    for (unsigned j = 0; j < k; j++) {
        std::int64_t s = head - j;
        if (s < 0)
            break;
        sum += buckets[static_cast<std::size_t>(s % cap)];
    }
    return sum;
}

double
RateWindow::ratePerSec(unsigned k, std::int64_t now_sec)
{
    if (k == 0)
        return 0;
    return static_cast<double>(sumLast(k, now_sec)) / k;
}

LatencyWindow::LatencyWindow(unsigned window_seconds, unsigned buckets)
    : frames(std::max(1u, window_seconds)),
      bucketCount(std::max(1u, buckets))
{
    for (auto &f : frames)
        f.buckets.assign(bucketCount, 0);
}

void
LatencyWindow::roll(std::int64_t now_sec)
{
    if (now_sec <= head)
        return;
    auto n = static_cast<std::int64_t>(frames.size());
    auto reset = [&](Frame &f) {
        std::fill(f.buckets.begin(), f.buckets.end(), 0);
        f.count = 0;
        f.sum = 0;
        f.maxVal = 0;
    };
    if (now_sec - head >= n) {
        for (auto &f : frames)
            reset(f);
    } else {
        for (std::int64_t s = head + 1; s <= now_sec; s++)
            reset(frames[static_cast<std::size_t>(s % n)]);
    }
    head = now_sec;
}

void
LatencyWindow::note(double v, std::int64_t now_sec)
{
    roll(now_sec);
    if (v < 0)
        v = 0;
    auto cap = static_cast<std::int64_t>(frames.size());
    Frame &f = frames[static_cast<std::size_t>(head % cap)];
    // Same bucketing as obs::Histogram: i = floor(log2(v)), bucket 0
    // absorbs [0, 2).
    std::size_t i = 0;
    if (v >= 2) {
        i = static_cast<std::size_t>(std::log2(v));
        i = std::min<std::size_t>(i, bucketCount - 1);
    }
    f.buckets[i]++;
    f.count++;
    f.sum += v;
    f.maxVal = std::max(f.maxVal, v);
    lifetime++;
}

double
LatencyWindow::Merged::quantile(double q) const
{
    if (!count)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= target) {
            // Bucket upper bound, clamped by the exact observed max.
            return std::min(std::exp2(static_cast<double>(i + 1)),
                            maxVal);
        }
    }
    return maxVal;
}

LatencyWindow::Merged
LatencyWindow::mergeLast(unsigned k, std::int64_t now_sec)
{
    roll(now_sec);
    Merged m;
    m.buckets.assign(bucketCount, 0);
    auto cap = static_cast<std::int64_t>(frames.size());
    k = std::min<unsigned>(k, static_cast<unsigned>(cap));
    for (unsigned j = 0; j < k; j++) {
        std::int64_t s = head - j;
        if (s < 0)
            break;
        const Frame &f = frames[static_cast<std::size_t>(s % cap)];
        if (!f.count)
            continue;
        for (std::size_t i = 0; i < bucketCount; i++)
            m.buckets[i] += f.buckets[i];
        m.count += f.count;
        m.sum += f.sum;
        m.maxVal = std::max(m.maxVal, f.maxVal);
    }
    return m;
}

std::string
promName(const std::string &name)
{
    std::string out = "xfd_";
    for (char c : name) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '_') {
            out += c;
        } else if (c >= 'A' && c <= 'Z') {
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            out += '_';
        }
    }
    return out;
}

namespace
{

/** Shortest %g-style spelling, matching JsonWriter's number style. */
std::string
num(double v)
{
    return strprintf("%g", v);
}

} // namespace

void
LiveSnapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("schema", "xfd-live-v1");
    w.field("wall_time", wallTime);
    w.field("uptime_seconds", uptimeSeconds);
    w.field("window_seconds", windowSeconds);
    w.key("counters").beginObject();
    for (const auto &c : counters) {
        w.key(c.name).beginObject();
        w.field("total", c.total);
        w.field("per_sec_1s", c.rate1s);
        w.field("per_sec_10s", c.rate10s);
        w.field("per_sec_60s", c.rate60s);
        w.endObject();
    }
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto &g : gauges)
        w.field(g.name, g.value);
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &h : hists) {
        w.key(h.name).beginObject();
        w.field("count", h.count);
        w.field("sum", h.sum);
        w.field("max", h.maxVal);
        w.field("p50", h.p50);
        w.field("p90", h.p90);
        w.field("p99", h.p99);
        // Trim trailing zero buckets to keep stream lines compact.
        std::size_t last = h.buckets.size();
        while (last > 0 && h.buckets[last - 1] == 0)
            last--;
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < last; i++)
            w.value(h.buckets[i]);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
LiveSnapshot::writePrometheus(std::ostream &os) const
{
    os << "# HELP xfd_up campaign process is serving live telemetry\n"
       << "# TYPE xfd_up gauge\n"
       << "xfd_up 1\n"
       << "# HELP xfd_uptime_seconds steady-clock seconds since "
          "telemetry start\n"
       << "# TYPE xfd_uptime_seconds gauge\n"
       << "xfd_uptime_seconds " << num(uptimeSeconds) << '\n'
       << "# HELP xfd_wall_time_seconds unix time at scrape\n"
       << "# TYPE xfd_wall_time_seconds gauge\n"
       << "xfd_wall_time_seconds " << num(wallTime) << '\n';

    for (const auto &c : counters) {
        std::string base = promName(c.name);
        os << "# HELP " << base << "_total campaign counter " << c.name
           << '\n'
           << "# TYPE " << base << "_total counter\n"
           << base << "_total " << c.total << '\n'
           << "# HELP " << base
           << "_per_sec sliding-window rate of " << c.name << '\n'
           << "# TYPE " << base << "_per_sec gauge\n"
           << base << "_per_sec{window=\"1s\"} " << num(c.rate1s)
           << '\n'
           << base << "_per_sec{window=\"10s\"} " << num(c.rate10s)
           << '\n'
           << base << "_per_sec{window=\"60s\"} " << num(c.rate60s)
           << '\n';
    }

    for (const auto &g : gauges) {
        std::string base = promName(g.name);
        os << "# HELP " << base << " campaign gauge " << g.name << '\n'
           << "# TYPE " << base << " gauge\n"
           << base << ' ' << num(g.value) << '\n';
    }

    for (const auto &h : hists) {
        std::string base = promName(h.name);
        os << "# HELP " << base << " windowed samples of " << h.name
           << " (last " << windowSeconds << "s)\n"
           << "# TYPE " << base << " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.buckets.size(); i++) {
            cum += h.buckets[i];
            os << base << "_bucket{le=\""
               << num(std::exp2(static_cast<double>(i + 1))) << "\"} "
               << cum << '\n';
        }
        os << base << "_bucket{le=\"+Inf\"} " << h.count << '\n'
           << base << "_sum " << num(h.sum) << '\n'
           << base << "_count " << h.count << '\n';
    }
}

LiveMetrics::LiveMetrics() : epoch(std::chrono::steady_clock::now())
{
}

std::int64_t
LiveMetrics::nowSec() const
{
    if (clockOverride)
        return clockOverride();
    using namespace std::chrono;
    return duration_cast<seconds>(steady_clock::now() - epoch).count();
}

void
LiveMetrics::count(const std::string &name, std::uint64_t n)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(lock);
    counters.try_emplace(name).first->second.note(n, nowSec());
}

void
LiveMetrics::sample(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(lock);
    hists.try_emplace(name).first->second.note(v, nowSec());
}

void
LiveMetrics::gauge(const std::string &name, double v)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(lock);
    gauges[name] = v;
}

LiveSnapshot
LiveMetrics::snapshot(unsigned window_seconds)
{
    std::lock_guard<std::mutex> guard(lock);
    LiveSnapshot snap;
    snap.windowSeconds = std::max(1u, window_seconds);
    if (wallOverride) {
        snap.wallTime = wallOverride();
    } else {
        using namespace std::chrono;
        snap.wallTime =
            duration<double>(
                system_clock::now().time_since_epoch())
                .count();
    }
    std::int64_t now = nowSec();
    if (clockOverride) {
        snap.uptimeSeconds = static_cast<double>(now);
    } else {
        snap.uptimeSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - epoch)
                .count();
    }
    for (auto &[name, win] : counters) {
        LiveCounterSnap c;
        c.name = name;
        c.total = win.total();
        c.rate1s = win.ratePerSec(1, now);
        c.rate10s = win.ratePerSec(10, now);
        c.rate60s = win.ratePerSec(60, now);
        snap.counters.push_back(std::move(c));
    }
    for (const auto &[name, v] : gauges)
        snap.gauges.push_back({name, v});
    for (auto &[name, win] : hists) {
        LatencyWindow::Merged m =
            win.mergeLast(snap.windowSeconds, now);
        LiveHistSnap h;
        h.name = name;
        h.count = m.count;
        h.sum = m.sum;
        h.maxVal = m.maxVal;
        h.p50 = m.quantile(0.50);
        h.p90 = m.quantile(0.90);
        h.p99 = m.quantile(0.99);
        h.buckets = std::move(m.buckets);
        snap.hists.push_back(std::move(h));
    }
    return snap;
}

void
LiveMetrics::setClockForTest(std::function<std::int64_t()> now_sec)
{
    std::lock_guard<std::mutex> guard(lock);
    clockOverride = std::move(now_sec);
}

void
LiveMetrics::setWallClockForTest(std::function<double()> wall)
{
    std::lock_guard<std::mutex> guard(lock);
    wallOverride = std::move(wall);
}

} // namespace xfd::obs
