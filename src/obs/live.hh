/**
 * @file
 * Live (per-second, sliding-window) campaign telemetry.
 *
 * The stats registry and timeline are end-of-campaign artifacts; the
 * live layer answers "what is the campaign doing *right now*":
 *
 *  - RateWindow     — a ring of per-second counter buckets, queried
 *    as a rate over the last 1/10/60 seconds;
 *  - LatencyWindow  — per-second frames of log2-bucketed samples
 *    (same bucketing as obs::Histogram), merged over the window at
 *    snapshot time for count/sum/max and quantile estimates;
 *  - LiveMetrics    — a named registry of both plus gauges, fed from
 *    the driver's per-failure-point loop through the observer, and
 *    snapshottable at any moment without stopping the campaign (one
 *    mutex, taken once per failure point and per snapshot).
 *
 * A LiveSnapshot renders as JSON (`/snapshot`, --live-jsonl) or as
 * the Prometheus text exposition format (`/metrics`); serving lives
 * in obs/serve.hh.
 *
 * Clock discipline: every duration and window position derives from
 * the steady clock. Wall-clock time appears in exactly one field —
 * LiveSnapshot::wallTime, stamped at snapshot time so scrapes can be
 * aligned with external logs.
 *
 * Disabled metrics (the default — campaigns run with telemetry off
 * unless --live/--live-port/--live-jsonl asks for it) cost one
 * relaxed atomic load per feed call.
 */

#ifndef XFD_OBS_LIVE_HH
#define XFD_OBS_LIVE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace xfd::obs
{

/**
 * Sliding window of per-second counter increments. Time is an
 * integer second index supplied by the caller (LiveMetrics uses
 * seconds since its steady-clock epoch; tests pass explicit values).
 * Seconds older than the ring capacity are forgotten; total() is
 * lifetime-accurate regardless.
 */
class RateWindow
{
  public:
    explicit RateWindow(unsigned window_seconds = 64);

    /** Add @p n events at second @p now_sec (monotone non-strict). */
    void note(std::uint64_t n, std::int64_t now_sec);

    /** Lifetime event count. */
    std::uint64_t total() const { return lifetime; }

    /**
     * Events in the @p k seconds ending at @p now_sec inclusive
     * (the current, possibly partial, second counts). @p k is
     * clamped to the ring capacity.
     */
    std::uint64_t sumLast(unsigned k, std::int64_t now_sec);

    /** sumLast(k) / k. */
    double ratePerSec(unsigned k, std::int64_t now_sec);

    unsigned capacity() const
    {
        return static_cast<unsigned>(buckets.size());
    }

  private:
    /** Zero buckets between the last-seen second and @p now_sec. */
    void roll(std::int64_t now_sec);

    std::vector<std::uint64_t> buckets;
    /** Second index buckets are positioned relative to. */
    std::int64_t head = 0;
    std::uint64_t lifetime = 0;
};

/**
 * Sliding window of log2-bucketed samples: one frame per second,
 * merged over the last k seconds at query time. Bucket i counts
 * samples in [2^i, 2^(i+1)) with bucket 0 absorbing [0, 2) —
 * identical to obs::Histogram, so live and end-of-campaign
 * histograms of the same quantity agree bucket-for-bucket.
 */
class LatencyWindow
{
  public:
    explicit LatencyWindow(unsigned window_seconds = 64,
                           unsigned buckets = 32);

    void note(double v, std::int64_t now_sec);

    /** Merged view over a window. */
    struct Merged
    {
        std::uint64_t count = 0;
        double sum = 0;
        double maxVal = 0;
        std::vector<std::uint64_t> buckets;

        /**
         * Quantile estimate: the upper bound (2^(i+1)) of the bucket
         * holding the q-th sample — an overestimate by at most one
         * bucket width, which is what log bucketing promises.
         */
        double quantile(double q) const;
    };

    /** Merge the @p k seconds ending at @p now_sec inclusive. */
    Merged mergeLast(unsigned k, std::int64_t now_sec);

    std::uint64_t totalCount() const { return lifetime; }

  private:
    struct Frame
    {
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0;
        double maxVal = 0;
    };

    void roll(std::int64_t now_sec);

    std::vector<Frame> frames;
    unsigned bucketCount;
    std::int64_t head = 0;
    std::uint64_t lifetime = 0;
};

/** One counter in a snapshot. */
struct LiveCounterSnap
{
    std::string name;
    std::uint64_t total = 0;
    double rate1s = 0;
    double rate10s = 0;
    double rate60s = 0;
};

/** One gauge in a snapshot. */
struct LiveGaugeSnap
{
    std::string name;
    double value = 0;
};

/** One latency histogram in a snapshot (window-merged). */
struct LiveHistSnap
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0;
    double maxVal = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    std::vector<std::uint64_t> buckets;
};

/** Point-in-time view of a LiveMetrics registry. */
struct LiveSnapshot
{
    /**
     * Seconds since the Unix epoch at snapshot time — the single
     * wall-clock field in the observability layer.
     */
    double wallTime = 0;
    /** Steady-clock seconds since the metrics epoch. */
    double uptimeSeconds = 0;
    /** Window the histograms were merged over. */
    unsigned windowSeconds = 10;
    std::vector<LiveCounterSnap> counters;
    std::vector<LiveGaugeSnap> gauges;
    std::vector<LiveHistSnap> hists;

    /** One xfd-live-v1 JSON object (no trailing newline). */
    void writeJson(JsonWriter &w) const;

    /**
     * Prometheus text exposition format: every counter becomes
     * xfd_<name>_total plus xfd_<name>_per_sec{window="..."} gauges,
     * every gauge xfd_<name>, every latency window a cumulative
     * xfd_<name> histogram with le="2^i" buckets. Dots and dashes in
     * names map to underscores.
     */
    void writePrometheus(std::ostream &os) const;
};

/** Sanitized Prometheus metric name ("xfd_" + name, [a-z0-9_]). */
std::string promName(const std::string &name);

/**
 * Named registry of rate counters, gauges and latency windows.
 * Thread-safe; feed calls on a disabled registry are one atomic
 * load. Names are dotted like registry stats ("phase.restore_us").
 */
class LiveMetrics
{
  public:
    LiveMetrics();

    /** Feeds are dropped while disabled (the default). */
    void setEnabled(bool on) { on_.store(on, std::memory_order_relaxed); }
    bool
    enabled() const
    {
        return on_.load(std::memory_order_relaxed);
    }

    /** Count @p n events on rate counter @p name. */
    void count(const std::string &name, std::uint64_t n = 1);

    /** Record one latency/size sample on window @p name. */
    void sample(const std::string &name, double v);

    /** Set gauge @p name to @p v. */
    void gauge(const std::string &name, double v);

    /**
     * Snapshot every metric, merging histograms over the last
     * @p window_seconds. Safe concurrently with feeds.
     */
    LiveSnapshot snapshot(unsigned window_seconds = 10);

    /**
     * @name Deterministic clocks for tests
     * Replace the second counter (steady epoch) and the wall clock
     * (system_clock) with fixed functions. @{
     */
    void setClockForTest(std::function<std::int64_t()> now_sec);
    void setWallClockForTest(std::function<double()> wall);
    /** @} */

  private:
    std::int64_t nowSec() const;

    std::atomic<bool> on_{false};
    std::chrono::steady_clock::time_point epoch;
    mutable std::mutex lock;
    /** Ordered maps: snapshots list metrics deterministically. */
    std::map<std::string, RateWindow> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, LatencyWindow> hists;
    std::function<std::int64_t()> clockOverride;
    std::function<double()> wallOverride;
};

} // namespace xfd::obs

#endif // XFD_OBS_LIVE_HH
