#include "obs/timeline.hh"

#include <algorithm>

#include "obs/json.hh"

namespace xfd::obs
{

Timeline::Timeline() : epoch(std::chrono::steady_clock::now())
{
    trackLabels.push_back("main");
}

int
Timeline::registerTrack(const std::string &label)
{
    std::lock_guard<std::mutex> guard(lock);
    trackLabels.push_back(label);
    return static_cast<int>(trackLabels.size()) - 1;
}

std::int64_t
Timeline::nowUs() const
{
    using namespace std::chrono;
    return duration_cast<microseconds>(steady_clock::now() - epoch)
        .count();
}

void
Timeline::recordSpan(std::string name, const char *cat, int tid,
                     std::int64_t ts_us, std::int64_t dur_us)
{
    if (!recording)
        return;
    std::lock_guard<std::mutex> guard(lock);
    evs.push_back({std::move(name), cat, tid, ts_us,
                   dur_us < 0 ? 0 : dur_us, {}});
}

void
Timeline::recordInstant(
    std::string name, const char *cat, int tid, std::int64_t ts_us,
    std::vector<std::pair<std::string, std::string>> args)
{
    if (!recording)
        return;
    std::lock_guard<std::mutex> guard(lock);
    evs.push_back(
        {std::move(name), cat, tid, ts_us, -1, std::move(args)});
}

std::vector<TimelineEvent>
Timeline::events() const
{
    std::vector<TimelineEvent> out;
    {
        std::lock_guard<std::mutex> guard(lock);
        out = evs;
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TimelineEvent &a, const TimelineEvent &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.tid < b.tid;
                     });
    return out;
}

std::vector<std::string>
Timeline::tracks() const
{
    std::lock_guard<std::mutex> guard(lock);
    return trackLabels;
}

std::size_t
Timeline::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return evs.size();
}

void
Timeline::clear()
{
    std::lock_guard<std::mutex> guard(lock);
    evs.clear();
}

void
Timeline::writeJsonl(std::ostream &os) const
{
    for (const auto &e : events()) {
        JsonWriter w(os);
        w.beginObject();
        w.field("name", e.name);
        w.field("cat", e.cat);
        w.field("tid", e.tid);
        w.field("ts_us", e.tsUs);
        if (e.durUs >= 0)
            w.field("dur_us", e.durUs);
        if (!e.args.empty()) {
            w.key("args").beginObject();
            for (const auto &[k, v] : e.args)
                w.field(k, v);
            w.endObject();
        }
        w.endObject();
        os << '\n';
    }
}

void
Timeline::writeChromeTrace(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Track labels first, as thread_name metadata events.
    std::vector<std::string> labels = tracks();
    for (std::size_t tid = 0; tid < labels.size(); tid++) {
        w.beginObject();
        w.field("ph", "M");
        w.field("name", "thread_name");
        w.field("pid", 1);
        w.field("tid", static_cast<std::int64_t>(tid));
        w.key("args").beginObject();
        w.field("name", labels[tid]);
        w.endObject();
        w.endObject();
    }

    for (const auto &e : events()) {
        w.beginObject();
        w.field("name", e.name);
        w.field("cat", e.cat);
        w.field("ph", e.durUs >= 0 ? "X" : "i");
        w.field("pid", 1);
        w.field("tid", e.tid);
        w.field("ts", e.tsUs);
        if (e.durUs >= 0)
            w.field("dur", e.durUs);
        else
            w.field("s", "t");
        if (!e.args.empty()) {
            w.key("args").beginObject();
            for (const auto &[k, v] : e.args)
                w.field(k, v);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace xfd::obs
