/**
 * @file
 * gem5-style statistics registry for detection campaigns.
 *
 * Components (Driver, ShadowPM, FailurePlanner, PmRuntime) register
 * named statistics into a StatsRegistry:
 *
 *  - Scalar       — a named counter or gauge,
 *  - Distribution — linearly-bucketed samples with moments,
 *  - Histogram    — power-of-two-bucketed samples (latencies),
 *  - Formula      — a value computed from other stats at dump time.
 *
 * Counters on hot paths must stay cheap: incrementing is a plain add,
 * collection is gated by DetectorConfig::collectStats at run time, and
 * the whole layer compiles to no-ops when XFD_STATS_NOOP is defined
 * (CMake option XFD_DISABLE_STATS), so the tracing-path overhead
 * measured by bench_trace_throughput can be driven to zero.
 */

#ifndef XFD_OBS_STATS_HH
#define XFD_OBS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace xfd::obs
{

/** Whether stat counters are compiled in at all. */
#ifdef XFD_STATS_NOOP
inline constexpr bool statsCompiledIn = false;
#else
inline constexpr bool statsCompiledIn = true;
#endif

/** Base of every registered statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : statName(std::move(name)), statDesc(std::move(desc))
    {
    }

    virtual ~StatBase() = default;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Emit this stat as the value of an already-written JSON key. */
    virtual void writeJson(JsonWriter &w) const = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A named scalar counter/gauge. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double d) { val += d; return *this; }
    Scalar &operator++() { val += 1; return *this; }
    void set(double v) { val = v; }
    double value() const { return val; }

    void writeJson(JsonWriter &w) const override;

  private:
    double val = 0;
};

/** Shared sample accounting for Distribution and Histogram. */
struct SampleMoments
{
    std::uint64_t count = 0;
    double sum = 0;
    double sqsum = 0;
    double minVal = 0;
    double maxVal = 0;

    void note(double v, std::uint64_t n);
    double mean() const { return count ? sum / count : 0; }
    double variance() const;
};

/** Linearly-bucketed distribution over [lo, hi). */
class Distribution : public StatBase
{
  public:
    Distribution(std::string name, std::string desc, double lo,
                 double hi, unsigned buckets);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t count() const { return m.count; }
    double mean() const { return m.mean(); }
    std::uint64_t bucketCount(unsigned i) const { return counts[i]; }
    std::uint64_t underflows() const { return underflow; }
    std::uint64_t overflows() const { return overflow; }

    void writeJson(JsonWriter &w) const override;

  private:
    double lo, hi, bucketSize;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    SampleMoments m;
};

/**
 * Power-of-two-bucketed histogram of non-negative values; bucket i
 * counts samples in [2^i, 2^(i+1)) (bucket 0 also takes [0, 2)).
 * Suits latencies, whose dynamic range spans decades.
 */
class Histogram : public StatBase
{
  public:
    Histogram(std::string name, std::string desc, unsigned buckets = 32);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t count() const { return m.count; }
    double mean() const { return m.mean(); }
    double min() const { return m.minVal; }
    double max() const { return m.maxVal; }
    std::uint64_t bucketCount(unsigned i) const { return counts[i]; }

    void writeJson(JsonWriter &w) const override;

  private:
    std::vector<std::uint64_t> counts;
    SampleMoments m;
};

/** A value computed from other stats when the registry is dumped. */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(std::move(name), std::move(desc)), eval(std::move(fn))
    {
    }

    double value() const { return eval ? eval() : 0; }

    void writeJson(JsonWriter &w) const override;

  private:
    std::function<double()> eval;
};

/**
 * The registry: owns stats, preserves registration order, dumps to
 * JSON as one flat object keyed by dotted stat names. Re-registering
 * an existing name returns the existing stat (so components can be
 * instantiated repeatedly within a campaign).
 */
class StatsRegistry
{
  public:
    Scalar &scalar(const std::string &name, const std::string &desc);
    Distribution &distribution(const std::string &name,
                               const std::string &desc, double lo,
                               double hi, unsigned buckets);
    Histogram &histogram(const std::string &name,
                         const std::string &desc,
                         unsigned buckets = 32);
    Formula &formula(const std::string &name, const std::string &desc,
                     std::function<double()> fn);

    /** @return the stat named @p name, or nullptr. */
    const StatBase *find(const std::string &name) const;

    /** Scalar/formula value by name (0 when absent — test helper). */
    double value(const std::string &name) const;

    std::size_t size() const { return order.size(); }
    bool empty() const { return order.empty(); }
    void clear();

    /** Emit `{ "<name>": {...}, ... }` in registration order. */
    void writeJson(JsonWriter &w) const;

  private:
    template <typename T, typename... Args>
    T &add(const std::string &name, Args &&...args);

    std::map<std::string, std::unique_ptr<StatBase>> byName;
    std::vector<StatBase *> order;
};

} // namespace xfd::obs

#endif // XFD_OBS_STATS_HH
