/**
 * @file
 * Minimal streaming JSON writer — the serialization substrate of the
 * observability layer (stats dumps, bug-report export, Chrome
 * trace_event files). No external dependency; emits compact,
 * RFC 8259-conformant output with full string escaping.
 *
 * Usage follows the begin/end nesting of the document:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("name").value("btree");
 *   w.key("rows").beginArray();
 *   w.value(1).value(2);
 *   w.endArray();
 *   w.endObject();
 */

#ifndef XFD_OBS_JSON_HH
#define XFD_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace xfd::obs
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Streaming writer for one JSON document. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : out(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Convenience: key + value in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        return key(k).value(v);
    }

  private:
    /** Emit the separator a new element at this nesting needs. */
    void element();

    std::ostream &out;
    /** true = inside an object (expects keys), false = inside array. */
    std::vector<bool> inObject;
    /** Whether the current container already has an element. */
    std::vector<bool> hasElement;
    /** A key was just written; the next value is its payload. */
    bool pendingKey = false;
};

} // namespace xfd::obs

#endif // XFD_OBS_JSON_HH
