/**
 * @file
 * xfd.hh — the public umbrella header and stable entry point.
 *
 * Most users need exactly one type from this repository: a campaign.
 *
 *     #include "xfd.hh"
 *
 *     auto res = xfd::Campaign::forProgram(pre, post)
 *                    .poolSize(1 << 20)
 *                    .threads(4)
 *                    .run();
 *     if (res.hasBugs())
 *         std::puts(res.summary().c_str());
 *
 * Campaign is a builder over core::Driver: it owns the PM pool
 * (unless one is supplied with onPool()), assembles the
 * DetectorConfig from named setters, and dispatches to the serial or
 * parallel driver. Everything it does can also be done with the
 * low-level layer (pm::PmPool + core::Driver), which remains public
 * and documented — the facade only removes the boilerplate and keeps
 * call sites stable while the layers underneath evolve (the
 * delta-image engine landed without touching any Campaign user).
 *
 * README.md "Migrating to xfd::Campaign" maps the old wiring to this
 * API.
 */

#ifndef XFD_XFD_HH
#define XFD_XFD_HH

#include <memory>
#include <utility>

#include "core/campaign_json.hh"
#include "core/config.hh"
#include "core/driver.hh"
#include "core/observer.hh"
#include "obs/serve.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace xfd
{

/** @name Stable aliases for the result-side vocabulary types. @{ */
using core::BugReport;
using core::BugType;
using core::CampaignObserver;
using core::CampaignResult;
using core::CampaignStats;
using core::DetectorConfig;
using core::ProgramFn;
/** @} */

/**
 * Fluent builder for a detection campaign. Construct with
 * forProgram(), chain option setters, finish with run(). A Campaign
 * is single-use state, not a long-lived object: run() may be called
 * repeatedly (e.g. buggy vs fixed variants reuse one configuration),
 * and each call starts from a fresh internally-owned pool unless
 * onPool() pinned an external one.
 */
class Campaign
{
  public:
    /**
     * @param pre  the pre-failure stage (setup + RoI operations)
     * @param post the post-failure stage (recovery + resumption),
     *             run once per injected failure point
     */
    static Campaign
    forProgram(ProgramFn pre, ProgramFn post)
    {
        return Campaign(std::move(pre), std::move(post));
    }

    /** Capacity of the internally-owned pool (default 4 MiB). */
    Campaign &
    poolSize(std::size_t bytes)
    {
        poolBytes = bytes;
        return *this;
    }

    /** Base PM address of the internally-owned pool. */
    Campaign &
    poolBase(Addr base)
    {
        baseAddr = base;
        return *this;
    }

    /**
     * Run on an existing pool instead of an internally-owned one
     * (e.g. when the caller pre-seeds pool contents). The pool must
     * outlive run(); poolSize()/poolBase() are ignored.
     */
    Campaign &
    onPool(pm::PmPool &pool)
    {
        external = &pool;
        return *this;
    }

    /** Post-failure executions distributed over @p n workers. */
    Campaign &
    threads(unsigned n)
    {
        nThreads = n;
        return *this;
    }

    /** Replace the whole DetectorConfig (escape hatch). */
    Campaign &
    config(const DetectorConfig &c)
    {
        cfg = c;
        return *this;
    }

    /** @name Named DetectorConfig setters @{ */

    /**
     * Select the campaign backend: "full", "delta" (default) or
     * "batched". See DetectorConfig::backend.
     */
    Campaign &
    backend(const std::string &mode)
    {
        cfg.backend = mode;
        return *this;
    }

    /**
     * @deprecated Use backend("delta") / backend("full"); kept one PR
     * for source compatibility (removal schedule: DESIGN.md §16).
     */
    Campaign &
    deltaImages(bool on = true)
    {
        cfg.backend = on ? "delta" : "full";
        return *this;
    }

    /** Delta restore granularity in bytes (power of two >= 64). */
    Campaign &
    deltaPageSize(std::size_t bytes)
    {
        cfg.deltaPageSize = bytes;
        return *this;
    }

    /** Full-copy resync cadence (0 = only at chunk starts). */
    Campaign &
    deltaCheckpointInterval(std::size_t restores)
    {
        cfg.deltaCheckpointInterval = restores;
        return *this;
    }

    /** Realistic crash image instead of the keep-everything copy. */
    Campaign &
    crashImage(bool on = true)
    {
        cfg.crashImageMode = on;
        return *this;
    }

    /** Strict persist extension for commit-covered locations. */
    Campaign &
    strictPersist(bool on = true)
    {
        cfg.strictPersistCheck = on;
        return *this;
    }

    /** Report performance bugs (default on). */
    Campaign &
    performanceBugs(bool on)
    {
        cfg.reportPerformanceBugs = on;
        return *this;
    }

    /** Shadow-PM cell granularity in bytes (1, 2, 4 or 8). */
    Campaign &
    granularity(unsigned bytes)
    {
        cfg.granularity = bytes;
        return *this;
    }

    /** Cap injected failure points (0 = unlimited). */
    Campaign &
    maxFailurePoints(std::size_t n)
    {
        cfg.maxFailurePoints = n;
        return *this;
    }

    /** Toggle observability counters (default on). */
    Campaign &
    collectStats(bool on)
    {
        cfg.collectStats = on;
        return *this;
    }

    /**
     * Enable the static lint pass: "all" or a comma list of rule ids
     * (XL01..XL08) or names. Reporting only; see lint::runLint.
     */
    Campaign &
    lintRules(const std::string &rules)
    {
        cfg.lintRules = rules;
        return *this;
    }

    /**
     * @deprecated Use backend("batched"); kept one PR for source
     * compatibility (removal schedule: DESIGN.md §16).
     */
    Campaign &
    lintPrune(bool on = true)
    {
        cfg.backend = on ? "batched" : "delta";
        return *this;
    }

    /** Elide same-value stores at trace-emit time (default off). */
    Campaign &
    elideSameValueWrites(bool on = true)
    {
        cfg.elideSameValueWrites = on;
        return *this;
    }

    /** Feed the live per-second telemetry registry (see --live). */
    Campaign &
    live(bool on = true)
    {
        cfg.liveTelemetry = on;
        return *this;
    }

    /** Serve live telemetry on 127.0.0.1:<port> (see --live-port). */
    Campaign &
    livePort(std::size_t port)
    {
        cfg.livePort = port;
        return *this;
    }

    /** Stream live snapshots as JSONL (see --live-jsonl). */
    Campaign &
    liveJsonl(const std::string &path)
    {
        cfg.liveJsonlPath = path;
        return *this;
    }

    /** @} */

    /** Attach observability sinks; must outlive run(). */
    Campaign &
    observer(CampaignObserver *o)
    {
        obs = o;
        return *this;
    }

    /** The DetectorConfig as currently assembled. */
    const DetectorConfig &configView() const { return cfg; }

    /** Execute the campaign. */
    CampaignResult
    run()
    {
        std::unique_ptr<pm::PmPool> owned;
        pm::PmPool *pool = external;
        if (!pool) {
            owned = std::make_unique<pm::PmPool>(poolBytes, baseAddr);
            pool = owned.get();
        }
        core::Driver driver(*pool, cfg);

        // Live outputs need an observer to host the registry; make an
        // internal one when the caller did not attach their own. A
        // caller-managed obs::LiveSession (observer->live already
        // enabled, as xfdetect does process-wide) takes precedence —
        // never stack a second server on the same registry.
        std::unique_ptr<CampaignObserver> internalObs;
        CampaignObserver *o = obs;
        if (!o && cfg.liveRequested()) {
            internalObs = std::make_unique<CampaignObserver>();
            internalObs->timeline.setEnabled(false);
            o = internalObs.get();
        }
        std::unique_ptr<obs::LiveSession> session;
        if (o && cfg.liveRequested() && !o->live.enabled()) {
            obs::LiveSession::Options opt;
            opt.serve = cfg.livePort != 0;
            opt.port = static_cast<std::uint16_t>(cfg.livePort);
            opt.jsonlPath = cfg.liveJsonlPath;
            session =
                std::make_unique<obs::LiveSession>(o->live, opt);
        }
        if (o)
            driver.setObserver(o);
        return driver.runParallel(preFn, postFn, nThreads);
    }

    /**
     * Fig. 12b baselines: run only the pre-failure stage.
     * @param traced trace without detecting when true; disable
     *               tracing too when false.
     * @return wall-clock seconds.
     */
    double
    baseline(bool traced)
    {
        std::unique_ptr<pm::PmPool> owned;
        pm::PmPool *pool = external;
        if (!pool) {
            owned = std::make_unique<pm::PmPool>(poolBytes, baseAddr);
            pool = owned.get();
        }
        core::Driver driver(*pool, cfg);
        return driver.runBaseline(preFn, traced);
    }

  private:
    Campaign(ProgramFn pre, ProgramFn post)
        : preFn(std::move(pre)), postFn(std::move(post))
    {
    }

    ProgramFn preFn;
    ProgramFn postFn;
    DetectorConfig cfg;
    std::size_t poolBytes = std::size_t{1} << 22;
    Addr baseAddr = defaultPoolBase;
    pm::PmPool *external = nullptr;
    unsigned nThreads = 1;
    CampaignObserver *obs = nullptr;
};

} // namespace xfd

#endif // XFD_XFD_HH
