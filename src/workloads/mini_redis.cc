#include "workloads/mini_redis.hh"

#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr std::uint64_t dictBuckets = 32;
constexpr std::size_t valBytes = 16;

struct RDictEntry
{
    std::uint64_t key;
    char val[valBytes];
    pm::PPtr<RDictEntry> next;
};

struct RDict
{
    std::uint64_t nbuckets;
};

struct RRoot
{
    std::uint64_t numDictEntries; ///< §6.3.2 bug 3 target
    /** Own cache line: neighbours' flushes must not mask the bug. */
    std::uint8_t pad[56];
    std::uint64_t initialized;
    pm::PPtr<RDict> dict;
};

/** Render the canonical value string for a raw 64-bit value. */
void
renderVal(std::uint64_t v, char out[valBytes])
{
    std::memset(out, 0, valBytes);
    std::snprintf(out, valBytes, "v:%012llx",
                  static_cast<unsigned long long>(v & 0xffffffffffffull));
}

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    /** initPersistentMemory() of Fig. 14c. */
    void
    initServer()
    {
        RRoot *r = op.root<RRoot>();
        if (rt.load(r->initialized))
            return;
        if (bug("redis.shipped.init_no_tx")) {
            // As shipped: plain store, no transaction, no persist.
            rt.store(r->numDictEntries, std::uint64_t{0});
        } else {
            pmlib::Tx tx(op);
            tx.add(r->numDictEntries);
            rt.store(r->numDictEntries, std::uint64_t{0});
            tx.commit();
        }
        pmlib::Tx tx(op);
        tx.add(r->dict);
        rt.store(r->dict, allocDict(tx));
        tx.add(r->initialized);
        rt.store(r->initialized, std::uint64_t{1});
        tx.commit();
    }

    void
    set(std::uint64_t k, std::uint64_t v)
    {
        RRoot *r = op.root<RRoot>();
        pmlib::Tx tx(op);
        char buf[valBytes];
        renderVal(v, buf);

        pm::PPtr<RDictEntry> *slot = slotOf(k);
        pm::PPtr<RDictEntry> cur_p = rt.load(*slot);
        while (!cur_p.null()) {
            RDictEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k) {
                if (!bug("redis.race.update_no_add"))
                    tx.addRange(cur->val, valBytes);
                rt.copyToPm(cur->val, buf, valBytes);
                tx.commit();
                return;
            }
            cur_p = rt.load(cur->next);
        }

        Addr ea = op.heap().palloc(sizeof(RDictEntry));
        if (!ea)
            panic("redis: pool exhausted");
        RDictEntry *e = static_cast<RDictEntry *>(rt.pool().toHost(ea));
        if (!bug("redis.race.entry_no_init"))
            tx.addRange(e, sizeof(RDictEntry));
        rt.setPm(e, 0, sizeof(RDictEntry));
        rt.store(e->key, k);
        rt.copyToPm(e->val, buf, valBytes);
        rt.store(e->next, rt.load(*slot));
        if (!bug("redis.race.slot_no_add"))
            tx.add(*slot);
        if (bug("redis.perf.double_add"))
            tx.addUnchecked(*slot);
        rt.store(*slot, pm::PPtr<RDictEntry>(ea));
        if (!bug("redis.race.set_no_add_count"))
            tx.add(r->numDictEntries);
        rt.store(r->numDictEntries, rt.load(r->numDictEntries) + 1);
        tx.commit();
    }

    std::optional<std::uint64_t> // returns raw value if parseable
    get(std::uint64_t k, char out[valBytes])
    {
        pm::PPtr<RDictEntry> cur_p = rt.load(*slotOf(k));
        while (!cur_p.null()) {
            RDictEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k) {
                rt.readPm(out, cur->val, valBytes);
                return 1;
            }
            cur_p = rt.load(cur->next);
        }
        return std::nullopt;
    }

    bool
    del(std::uint64_t k)
    {
        RRoot *r = op.root<RRoot>();
        pmlib::Tx tx(op);
        pm::PPtr<RDictEntry> *link = slotOf(k);
        pm::PPtr<RDictEntry> cur_p = rt.load(*link);
        while (!cur_p.null()) {
            RDictEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k) {
                if (!bug("redis.race.del_no_add"))
                    tx.add(*link);
                rt.store(*link, rt.load(cur->next));
                tx.add(r->numDictEntries);
                rt.store(r->numDictEntries,
                         rt.load(r->numDictEntries) - 1);
                tx.commit();
                op.heap().pfree(cur_p.addr());
                return true;
            }
            link = &cur->next;
            cur_p = rt.load(*link);
        }
        tx.commit();
        return false;
    }

    /** DBSIZE: the reader of the §6.3.2 bug-3 field. */
    std::uint64_t
    dbsize()
    {
        return rt.load(op.root<RRoot>()->numDictEntries);
    }

    /** Full dict walk reading every key/value (startup warm-up). */
    void
    scan()
    {
        RRoot *r = op.root<RRoot>();
        RDict *d = rt.load(r->dict).get(rt.pool());
        std::uint64_t nb = rt.load(d->nbuckets);
        auto *base = reinterpret_cast<pm::PPtr<RDictEntry> *>(d + 1);
        char buf[valBytes];
        for (std::uint64_t i = 0; i < nb; i++) {
            pm::PPtr<RDictEntry> cur_p = rt.load(base[i]);
            while (!cur_p.null()) {
                RDictEntry *cur = entry(cur_p);
                (void)rt.load(cur->key);
                rt.readPm(buf, cur->val, valBytes);
                cur_p = rt.load(cur->next);
            }
        }
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    RDictEntry *entry(pm::PPtr<RDictEntry> p) { return p.get(rt.pool()); }

    pm::PPtr<RDictEntry> *
    slotOf(std::uint64_t k)
    {
        RRoot *r = op.root<RRoot>();
        RDict *d = rt.load(r->dict).get(rt.pool());
        std::uint64_t nb = rt.load(d->nbuckets);
        if (nb == 0)
            throw pm::BadPmAccess{0, 0};
        std::uint64_t x = k * 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        auto *base = reinterpret_cast<pm::PPtr<RDictEntry> *>(d + 1);
        return base + (x % nb);
    }

    pm::PPtr<RDict>
    allocDict(pmlib::Tx &tx)
    {
        std::size_t bytes =
            sizeof(RDict) + dictBuckets * sizeof(pm::PPtr<RDictEntry>);
        Addr a = op.heap().palloc(bytes);
        if (!a)
            panic("redis: pool exhausted");
        auto *d = static_cast<RDict *>(rt.pool().toHost(a));
        tx.addRange(d, bytes);
        rt.setPm(d, 0, bytes);
        rt.store(d->nbuckets, dictBuckets);
        return pm::PPtr<RDict>(a);
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
};

void
apply(Impl &impl, const KvAction &a)
{
    char buf[valBytes];
    switch (a.op) {
      case KvOp::Insert:
        impl.set(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.del(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key, buf);
        break;
    }
}

} // namespace

void
MiniRedis::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "mini_redis", sizeof(RRoot));
    Impl impl(rt, op, cfg.bugs);
    impl.initServer();
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
MiniRedis::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "mini_redis", sizeof(RRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    // Server restart: finish initialization if the failure preempted
    // it, then serve queries; DBSIZE reads the bug-3 field.
    impl.initServer();
    (void)impl.dbsize();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
MiniRedis::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "mini_redis");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        char got[valBytes];
        if (!impl.get(k, got))
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        char want[valBytes];
        renderVal(v, want);
        if (std::memcmp(got, want, valBytes) != 0)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.dbsize() != expected.size())
        return strprintf("dbsize %llu != expected %zu",
                         static_cast<unsigned long long>(impl.dbsize()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
