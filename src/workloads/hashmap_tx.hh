/**
 * @file
 * Transactional persistent chained hashmap (PMDK example "hashmap_tx"
 * equivalent), including the load-factor-triggered rebuild that
 * reallocates the bucket array and rehashes every entry inside one
 * transaction.
 */

#ifndef XFD_WORKLOADS_HASHMAP_TX_HH
#define XFD_WORKLOADS_HASHMAP_TX_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The Hashmap-TX workload of Table 4. */
class HashmapTx : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "Hashmap-TX"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_HASHMAP_TX_HH
