/**
 * @file
 * Common interface for the paper's evaluated PM programs (Table 4).
 *
 * A workload provides the two stages the detection driver needs:
 * pre() creates/initializes its pool and runs `testOps` operations
 * inside the region-of-interest; post() reopens the pool (recovery)
 * and runs `postOps` resumption operations. Both stages must be
 * deterministic (seeded RNG, no wall clock).
 *
 * Synthetic bugs (the Table 5 validation suite and the §6.3.2 new
 * bugs) are injected with string-keyed flags checked at the exact
 * code site they perturb.
 */

#ifndef XFD_WORKLOADS_WORKLOAD_HH
#define XFD_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/runtime.hh"

namespace xfd::workloads
{

/** Set of injected synthetic-bug identifiers. */
class BugMask
{
  public:
    BugMask() = default;

    BugMask(std::initializer_list<std::string> l) : ids(l) {}

    void enable(const std::string &id) { ids.insert(id); }

    bool has(const char *id) const { return ids.count(id) != 0; }

    bool empty() const { return ids.empty(); }

  private:
    std::set<std::string> ids;
};

/** Parameters of one workload run. */
struct WorkloadConfig
{
    /** Insertions performed before the RoI (the scripts' INITSIZE). */
    unsigned initOps = 5;
    /** Operations performed inside the RoI (the scripts' TESTSIZE). */
    unsigned testOps = 1;
    /** Resumption operations after recovery in the post stage. */
    unsigned postOps = 1;
    /**
     * Begin the RoI before pool creation instead of after the init
     * insertions. The paper marks "the entire program" as RoI for the
     * micro benchmarks; the creation-time bugs (§6.3.2 bugs 1-3) only
     * surface when failure points cover initialization.
     */
    bool roiFromStart = false;
    std::uint64_t seed = 42;
    /** Item capacity of the Memcached workload before LRU eviction. */
    std::uint64_t memcachedCapacity = 4096;
    BugMask bugs;
};

/** One evaluated PM program. */
class Workload
{
  public:
    explicit Workload(WorkloadConfig cfg) : cfg(std::move(cfg)) {}
    virtual ~Workload() = default;

    /** Short name matching Table 4 ("B-Tree", "Redis", ...). */
    virtual const char *name() const = 0;

    /** Pre-failure stage: setup, then RoI operations. */
    virtual void pre(trace::PmRuntime &rt) = 0;

    /** Post-failure stage: recovery, then RoI resumption. */
    virtual void post(trace::PmRuntime &rt) = 0;

    /**
     * Functional self-check on the final pre-failure state; returns
     * an empty string on success, else a description of the mismatch.
     * Used by the workload unit tests, not by detection campaigns.
     */
    virtual std::string verify(trace::PmRuntime &rt) = 0;

    const WorkloadConfig &config() const { return cfg; }

  protected:
    bool bug(const char *id) const { return cfg.bugs.has(id); }

    /** Deterministic key for the i-th operation. */
    std::uint64_t
    keyAt(unsigned i) const
    {
        Rng rng(cfg.seed + i * 0x9e3779b9u);
        return rng.next() % 100000 + 1; // keys are nonzero
    }

    /** Deterministic value for the i-th operation. */
    std::uint64_t
    valAt(unsigned i) const
    {
        Rng rng(cfg.seed * 31 + i);
        return rng.next();
    }

    WorkloadConfig cfg;
};

/** Names accepted by makeWorkload(). */
std::vector<std::string> workloadNames();

/** Factory over all evaluated programs. */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       WorkloadConfig cfg);

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_WORKLOAD_HH
