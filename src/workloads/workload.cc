#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/btree.hh"
#include "workloads/wal_btree.hh"
#include "workloads/ctree.hh"
#include "workloads/hashmap_atomic.hh"
#include "workloads/hashmap_tx.hh"
#include "workloads/kv_actions.hh"
#include "workloads/mini_memcached.hh"
#include "workloads/mini_redis.hh"
#include "workloads/rbtree.hh"
#include "workloads/ringlog.hh"

namespace xfd::workloads
{

std::vector<KvAction>
kvActions(const WorkloadConfig &cfg, unsigned total)
{
    std::vector<KvAction> actions;
    std::vector<std::uint64_t> inserted;
    Rng rng(cfg.seed ^ 0xa5a5a5a5ull);
    for (unsigned i = 0; i < total; i++) {
        // A small key space makes duplicate-key (update) and
        // remove-hit paths trigger deterministically in short runs.
        std::uint64_t key = rng.next() % 64 + 1;
        std::uint64_t val = rng.next();
        if (i < cfg.initOps) {
            actions.push_back({KvOp::Insert, key, val});
            inserted.push_back(key);
            continue;
        }
        std::uint64_t pick = rng.below(10);
        if (pick < 6 || inserted.empty()) {
            actions.push_back({KvOp::Insert, key, val});
            inserted.push_back(key);
        } else if (pick < 8) {
            std::uint64_t victim =
                inserted[rng.below(inserted.size())];
            actions.push_back({KvOp::Remove, victim, 0});
        } else {
            std::uint64_t probe =
                inserted[rng.below(inserted.size())];
            actions.push_back({KvOp::Get, probe, 0});
        }
    }
    return actions;
}

std::map<std::uint64_t, std::uint64_t>
kvExpected(const WorkloadConfig &cfg, unsigned total)
{
    std::map<std::uint64_t, std::uint64_t> model;
    for (const auto &a : kvActions(cfg, total)) {
        switch (a.op) {
          case KvOp::Insert:
            model[a.key] = a.val;
            break;
          case KvOp::Remove:
            model.erase(a.key);
            break;
          case KvOp::Get:
            break;
        }
    }
    return model;
}

std::vector<std::string>
workloadNames()
{
    return {"btree",  "wal_btree", "ctree",     "rbtree",
            "hashmap_tx", "hashmap_atomic", "redis", "memcached",
            "ringlog"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, WorkloadConfig cfg)
{
    if (name == "btree")
        return std::make_unique<BTree>(std::move(cfg));
    if (name == "wal_btree")
        return std::make_unique<WalBTree>(std::move(cfg));
    if (name == "ctree")
        return std::make_unique<CTree>(std::move(cfg));
    if (name == "rbtree")
        return std::make_unique<RBTree>(std::move(cfg));
    if (name == "hashmap_tx")
        return std::make_unique<HashmapTx>(std::move(cfg));
    if (name == "hashmap_atomic")
        return std::make_unique<HashmapAtomic>(std::move(cfg));
    if (name == "redis")
        return std::make_unique<MiniRedis>(std::move(cfg));
    if (name == "memcached")
        return std::make_unique<MiniMemcached>(std::move(cfg));
    if (name == "ringlog")
        return std::make_unique<RingLog>(std::move(cfg));
    fatal("unknown workload: %s", name.c_str());
}

} // namespace xfd::workloads
