#include "workloads/btree.hh"

#include <optional>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr unsigned maxKeys = 3; // degree-4 B-tree

struct Node
{
    std::uint64_t n;
    std::uint64_t keys[maxKeys];
    std::uint64_t vals[maxKeys];
    pm::PPtr<Node> child[maxKeys + 1];
};

struct BRoot
{
    pm::PPtr<Node> root;
    std::uint64_t count;
};

/** All B-tree logic, bound to one runtime/pool pair. */
class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        BRoot *r = op.root<BRoot>();
        pmlib::Tx tx(op);

        pm::PPtr<Node> root_p = rt.load(r->root);
        if (root_p.null()) {
            pm::PPtr<Node> node_p =
                allocNode(tx, bug("btree.race.first_node_no_init"));
            Node *node = resolve(node_p);
            rt.store(node->keys[0], k);
            rt.store(node->vals[0], v);
            rt.store(node->n, std::uint64_t{1});
            if (!bug("btree.race.rootptr_no_add"))
                tx.add(r->root);
            rt.store(r->root, node_p);
            bumpCount(tx, 1, "btree.race.count_no_add");
            tx.commit();
            return;
        }

        if (rt.load(resolve(root_p)->n) == maxKeys) {
            // Preemptive root split.
            pm::PPtr<Node> newroot_p =
                allocNode(tx, bug("btree.race.newroot_no_init"));
            Node *newroot = resolve(newroot_p);
            rt.store(newroot->child[0], root_p);
            // The injected new-root bug leaves the node entirely
            // outside the undo log: splitChild must not re-log it.
            splitChild(tx, newroot_p, 0,
                       bug("btree.race.newroot_no_init"));
            if (!bug("btree.race.rootptr_no_add"))
                tx.add(r->root);
            rt.store(r->root, newroot_p);
            root_p = newroot_p;
        }

        pm::PPtr<Node> cur_p = root_p;
        for (;;) {
            Node *cur = resolve(cur_p);
            std::uint64_t n = rt.load(cur->n);
            unsigned idx = 0;
            bool found = false;
            for (; idx < n; idx++) {
                std::uint64_t ki = rt.load(cur->keys[idx]);
                if (k == ki) {
                    found = true;
                    break;
                }
                if (k < ki)
                    break;
            }
            if (found) {
                // Update in place; no count change.
                if (!bug("btree.race.update_no_add"))
                    tx.add(cur->vals[idx]);
                rt.store(cur->vals[idx], v);
                tx.commit();
                return;
            }
            if (rt.load(cur->child[0]).null()) {
                // Leaf insertion.
                bool write_first = bug("btree.race.write_before_add");
                if (!write_first && !bug("btree.race.leaf_no_add"))
                    tx.addRange(cur, sizeof(Node));
                if (bug("btree.perf.double_add"))
                    tx.addRangeUnchecked(cur, sizeof(Node));
                for (unsigned j = static_cast<unsigned>(n); j > idx;
                     j--) {
                    rt.store(cur->keys[j], rt.load(cur->keys[j - 1]));
                    rt.store(cur->vals[j], rt.load(cur->vals[j - 1]));
                }
                rt.store(cur->keys[idx], k);
                rt.store(cur->vals[idx], v);
                rt.store(cur->n, n + 1);
                if (write_first) {
                    // Snapshotting *after* the update logs the new
                    // value: the write races at failure points before
                    // the snapshot commits.
                    tx.addRange(cur, sizeof(Node));
                }
                bumpCount(tx, 1, "btree.race.count_no_add");
                tx.commit();
                return;
            }
            pm::PPtr<Node> ch_p = rt.load(cur->child[idx]);
            if (rt.load(resolve(ch_p)->n) == maxKeys) {
                splitChild(tx, cur_p, idx);
                continue; // re-examine this level
            }
            cur_p = ch_p;
        }
    }

    void
    remove(std::uint64_t k)
    {
        BRoot *r = op.root<BRoot>();
        pmlib::Tx tx(op);
        pm::PPtr<Node> cur_p = rt.load(r->root);
        unsigned idx = 0;
        Node *cur = nullptr;
        bool found = false;
        while (!cur_p.null()) {
            cur = resolve(cur_p);
            std::uint64_t n = rt.load(cur->n);
            found = false;
            for (idx = 0; idx < n; idx++) {
                std::uint64_t ki = rt.load(cur->keys[idx]);
                if (k == ki) {
                    found = true;
                    break;
                }
                if (k < ki)
                    break;
            }
            if (found)
                break;
            cur_p = rt.load(cur->child[idx]);
            if (isLeafPtr(cur_p))
                break;
        }
        if (!found && !cur_p.null()) {
            // Possibly in the final leaf.
            cur = resolve(cur_p);
            std::uint64_t n = rt.load(cur->n);
            for (idx = 0; idx < n; idx++) {
                if (rt.load(cur->keys[idx]) == k) {
                    found = true;
                    break;
                }
            }
        }
        if (!found) {
            tx.commit();
            return;
        }

        if (rt.load(cur->child[0]).null()) {
            removeAt(tx, cur, idx, "btree.race.remove_no_add");
        } else {
            // Swap with the predecessor, then remove it from its leaf.
            pm::PPtr<Node> p_p = rt.load(cur->child[idx]);
            Node *pl = resolve(p_p);
            while (!rt.load(pl->child[0]).null()) {
                p_p = rt.load(pl->child[rt.load(pl->n)]);
                pl = resolve(p_p);
            }
            std::uint64_t pn = rt.load(pl->n);
            if (!bug("btree.race.remove_no_add"))
                tx.addRange(cur, sizeof(Node));
            rt.store(cur->keys[idx], rt.load(pl->keys[pn - 1]));
            rt.store(cur->vals[idx], rt.load(pl->vals[pn - 1]));
            tx.addRange(pl, sizeof(Node));
            rt.store(pl->n, pn - 1);
        }
        bumpCount(tx, -1, "btree.race.remove_count_no_add");
        if (bug("btree.perf.extra_flush")) {
            // Redundant: commit below already flushes logged ranges.
            tx.commit();
            rt.persistBarrier(op.root<BRoot>(), sizeof(BRoot));
            return;
        }
        tx.commit();
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        BRoot *r = op.root<BRoot>();
        pm::PPtr<Node> cur_p = rt.load(r->root);
        while (!cur_p.null()) {
            Node *cur = resolve(cur_p);
            std::uint64_t n = rt.load(cur->n);
            unsigned idx = 0;
            for (; idx < n; idx++) {
                std::uint64_t ki = rt.load(cur->keys[idx]);
                if (k == ki)
                    return rt.load(cur->vals[idx]);
                if (k < ki)
                    break;
            }
            cur_p = rt.load(cur->child[idx]);
        }
        return std::nullopt;
    }

    std::uint64_t count() { return rt.load(op.root<BRoot>()->count); }

    /** Full traversal reading every key/value (recovery warm-up). */
    void
    scan()
    {
        scanNode(rt.load(op.root<BRoot>()->root));
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    Node *resolve(pm::PPtr<Node> p) { return p.get(rt.pool()); }

    bool
    isLeafPtr(pm::PPtr<Node> p)
    {
        return p.null() || rt.load(resolve(p)->child[0]).null();
    }

    void
    scanNode(pm::PPtr<Node> p)
    {
        if (p.null())
            return;
        Node *n = resolve(p);
        std::uint64_t cnt = rt.load(n->n);
        for (unsigned i = 0; i < cnt; i++) {
            (void)rt.load(n->keys[i]);
            (void)rt.load(n->vals[i]);
        }
        if (!rt.load(n->child[0]).null()) {
            for (unsigned i = 0; i <= cnt; i++)
                scanNode(rt.load(n->child[i]));
        }
    }

    pm::PPtr<Node>
    allocNode(pmlib::Tx &tx, bool skip_init)
    {
        Addr a = op.heap().palloc(sizeof(Node));
        if (!a)
            panic("btree: pool exhausted");
        Node *node = static_cast<Node *>(rt.pool().toHost(a));
        if (!skip_init) {
            // Log the fresh node so commit flushes it (and rollback
            // discards it together with its link).
            tx.addRange(node, sizeof(Node));
        }
        rt.setPm(node, 0, sizeof(Node));
        return pm::PPtr<Node>(a);
    }

    void
    splitChild(pmlib::Tx &tx, pm::PPtr<Node> parent_p, unsigned idx,
               bool skip_parent_add = false)
    {
        Node *parent = resolve(parent_p);
        pm::PPtr<Node> child_p = rt.load(parent->child[idx]);
        Node *c = resolve(child_p);
        pm::PPtr<Node> sib_p =
            allocNode(tx, bug("btree.race.sibling_no_init"));
        Node *sib = resolve(sib_p);

        if (!skip_parent_add && !bug("btree.race.parent_no_add"))
            tx.addRange(parent, sizeof(Node));
        if (!bug("btree.race.child_no_add"))
            tx.addRange(c, sizeof(Node));

        // Upper third moves to the new sibling.
        rt.store(sib->keys[0], rt.load(c->keys[2]));
        rt.store(sib->vals[0], rt.load(c->vals[2]));
        rt.store(sib->child[0], rt.load(c->child[2]));
        rt.store(sib->child[1], rt.load(c->child[3]));
        rt.store(sib->n, std::uint64_t{1});

        // Median rises into the parent.
        std::uint64_t parent_n = rt.load(parent->n);
        for (unsigned j = static_cast<unsigned>(parent_n); j > idx; j--) {
            rt.store(parent->keys[j], rt.load(parent->keys[j - 1]));
            rt.store(parent->vals[j], rt.load(parent->vals[j - 1]));
            rt.store(parent->child[j + 1], rt.load(parent->child[j]));
        }
        rt.store(parent->keys[idx], rt.load(c->keys[1]));
        rt.store(parent->vals[idx], rt.load(c->vals[1]));
        rt.store(parent->child[idx + 1], sib_p);
        rt.store(parent->n, parent_n + 1);
        rt.store(c->n, std::uint64_t{1});
    }

    void
    removeAt(pmlib::Tx &tx, Node *leaf, unsigned idx, const char *flag)
    {
        if (!bug(flag))
            tx.addRange(leaf, sizeof(Node));
        std::uint64_t n = rt.load(leaf->n);
        for (unsigned j = idx; j + 1 < n; j++) {
            rt.store(leaf->keys[j], rt.load(leaf->keys[j + 1]));
            rt.store(leaf->vals[j], rt.load(leaf->vals[j + 1]));
        }
        rt.store(leaf->n, n - 1);
    }

    void
    bumpCount(pmlib::Tx &tx, int delta, const char *flag)
    {
        BRoot *r = op.root<BRoot>();
        if (!bug(flag))
            tx.add(r->count);
        rt.store(r->count,
                 rt.load(r->count) + static_cast<std::uint64_t>(delta));
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
BTree::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op = pmlib::ObjPool::create(rt, "btree", sizeof(BRoot));
    Impl impl(rt, op, cfg.bugs);
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
BTree::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "btree", sizeof(BRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    // Resumption first consults the element count (the paper's
    // Figure 1 pattern), then continues the operation stream.
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
BTree::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "btree");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != v)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != expected.size())
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
