#include "workloads/rbtree.hh"

#include <optional>
#include <set>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

struct RbNode
{
    std::uint64_t key;
    std::uint64_t val;
    std::uint64_t red; // 1 = red, 0 = black
    pm::PPtr<RbNode> left;
    pm::PPtr<RbNode> right;
    pm::PPtr<RbNode> parent;
};

struct RbRoot
{
    pm::PPtr<RbNode> root;
    std::uint64_t count;
};

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        RbRoot *r = op.root<RbRoot>();
        pmlib::Tx tx(op);
        added.clear();

        // BST descent.
        pm::PPtr<RbNode> parent_p;
        pm::PPtr<RbNode> cur_p = rt.load(r->root);
        while (!cur_p.null()) {
            RbNode *cur = resolve(cur_p);
            std::uint64_t ck = rt.load(cur->key);
            if (ck == k) {
                if (!bug("rbtree.race.update_no_add"))
                    tx.add(cur->val);
                rt.store(cur->val, v);
                tx.commit();
                return;
            }
            parent_p = cur_p;
            cur_p = k < ck ? rt.load(cur->left) : rt.load(cur->right);
        }

        pm::PPtr<RbNode> node_p = allocNode(tx, k, v);
        RbNode *node = resolve(node_p);
        rt.store(node->parent, parent_p);
        if (parent_p.null()) {
            setRoot(tx, node_p);
        } else {
            RbNode *parent = resolve(parent_p);
            addNode(tx, parent_p, "rbtree.race.insert_link_no_add");
            if (k < rt.load(parent->key))
                rt.store(parent->left, node_p);
            else
                rt.store(parent->right, node_p);
        }
        fixupInsert(tx, node_p);
        bumpCount(tx, 1);
        tx.commit();
    }

    void
    remove(std::uint64_t k)
    {
        RbRoot *r = op.root<RbRoot>();
        pmlib::Tx tx(op);
        added.clear();

        pm::PPtr<RbNode> z_p = rt.load(r->root);
        while (!z_p.null()) {
            RbNode *z = resolve(z_p);
            std::uint64_t zk = rt.load(z->key);
            if (zk == k)
                break;
            z_p = k < zk ? rt.load(z->left) : rt.load(z->right);
        }
        if (z_p.null()) {
            tx.commit();
            return;
        }
        RbNode *z = resolve(z_p);

        pm::PPtr<RbNode> victim_p = z_p;
        if (!rt.load(z->left).null() && !rt.load(z->right).null()) {
            // Two children: move the successor's payload into z.
            pm::PPtr<RbNode> y_p = rt.load(z->right);
            while (!rt.load(resolve(y_p)->left).null())
                y_p = rt.load(resolve(y_p)->left);
            RbNode *y = resolve(y_p);
            addNode(tx, z_p, "rbtree.race.remove_link_no_add");
            rt.store(z->key, rt.load(y->key));
            rt.store(z->val, rt.load(y->val));
            victim_p = y_p;
        }

        // victim has at most one child: splice it out.
        RbNode *victim = resolve(victim_p);
        pm::PPtr<RbNode> child_p = rt.load(victim->left);
        if (child_p.null())
            child_p = rt.load(victim->right);
        pm::PPtr<RbNode> vparent_p = rt.load(victim->parent);
        if (!child_p.null()) {
            RbNode *child = resolve(child_p);
            addNode(tx, child_p, "rbtree.race.remove_link_no_add");
            rt.store(child->parent, vparent_p);
        }
        if (vparent_p.null()) {
            setRoot(tx, child_p);
        } else {
            RbNode *vp = resolve(vparent_p);
            addNode(tx, vparent_p, "rbtree.race.remove_link_no_add");
            if (rt.load(vp->left) == victim_p)
                rt.store(vp->left, child_p);
            else
                rt.store(vp->right, child_p);
        }
        bumpCount(tx, -1);
        tx.commit();
        op.heap().pfree(victim_p.addr());
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        RbRoot *r = op.root<RbRoot>();
        pm::PPtr<RbNode> cur_p = rt.load(r->root);
        while (!cur_p.null()) {
            RbNode *cur = resolve(cur_p);
            std::uint64_t ck = rt.load(cur->key);
            if (ck == k)
                return rt.load(cur->val);
            cur_p = k < ck ? rt.load(cur->left) : rt.load(cur->right);
        }
        return std::nullopt;
    }

    std::uint64_t count() { return rt.load(op.root<RbRoot>()->count); }

    /** Structural invariant check: BST order + red-red violations. */
    std::string
    checkStructure()
    {
        RbRoot *r = op.root<RbRoot>();
        return checkSubtree(rt.load(r->root), 0,
                            ~static_cast<std::uint64_t>(0));
    }

    /** Full traversal reading every key/value (recovery warm-up). */
    void
    scan()
    {
        scanNode(rt.load(op.root<RbRoot>()->root));
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    RbNode *resolve(pm::PPtr<RbNode> p) { return p.get(rt.pool()); }

    void
    scanNode(pm::PPtr<RbNode> p)
    {
        if (p.null())
            return;
        RbNode *n = resolve(p);
        (void)rt.load(n->key);
        (void)rt.load(n->val);
        (void)rt.load(n->red);
        scanNode(rt.load(n->left));
        scanNode(rt.load(n->right));
    }

    /** TX_ADD a whole node once per transaction. */
    void
    addNode(pmlib::Tx &tx, pm::PPtr<RbNode> p, const char *flag)
    {
        if (p.null() || bug(flag))
            return;
        if (added.count(p.addr()))
            return;
        added.insert(p.addr());
        tx.addRange(resolve(p), sizeof(RbNode));
    }

    pm::PPtr<RbNode>
    allocNode(pmlib::Tx &tx, std::uint64_t k, std::uint64_t v)
    {
        Addr a = op.heap().palloc(sizeof(RbNode));
        if (!a)
            panic("rbtree: pool exhausted");
        RbNode *node = static_cast<RbNode *>(rt.pool().toHost(a));
        if (!bug("rbtree.race.newnode_no_init")) {
            tx.addRange(node, sizeof(RbNode));
            if (bug("rbtree.perf.double_add"))
                tx.addRangeUnchecked(node, sizeof(RbNode));
            added.insert(a);
        }
        rt.setPm(node, 0, sizeof(RbNode));
        rt.store(node->key, k);
        rt.store(node->val, v);
        rt.store(node->red, std::uint64_t{1});
        return pm::PPtr<RbNode>(a);
    }

    void
    bumpCount(pmlib::Tx &tx, int delta)
    {
        RbRoot *r = op.root<RbRoot>();
        if (!bug("rbtree.race.count_no_add"))
            tx.add(r->count);
        rt.store(r->count,
                 rt.load(r->count) + static_cast<std::uint64_t>(delta));
    }

    void
    setRoot(pmlib::Tx &tx, pm::PPtr<RbNode> p)
    {
        RbRoot *r = op.root<RbRoot>();
        if (!bug("rbtree.race.rootptr_no_add"))
            tx.add(r->root);
        rt.store(r->root, p);
    }

    bool
    isRed(pm::PPtr<RbNode> p)
    {
        return !p.null() && rt.load(resolve(p)->red) != 0;
    }

    void
    setColor(pmlib::Tx &tx, pm::PPtr<RbNode> p, std::uint64_t red)
    {
        if (p.null())
            return;
        addNode(tx, p, "rbtree.race.color_no_add");
        rt.store(resolve(p)->red, red);
    }

    void
    rotateLeft(pmlib::Tx &tx, pm::PPtr<RbNode> x_p)
    {
        RbNode *x = resolve(x_p);
        pm::PPtr<RbNode> y_p = rt.load(x->right);
        RbNode *y = resolve(y_p);
        addNode(tx, x_p, "rbtree.race.rotate_no_add");
        addNode(tx, y_p, "rbtree.race.rotate_no_add");

        pm::PPtr<RbNode> beta = rt.load(y->left);
        rt.store(x->right, beta);
        if (!beta.null()) {
            addNode(tx, beta, "rbtree.race.rotate_no_add");
            rt.store(resolve(beta)->parent, x_p);
        }
        pm::PPtr<RbNode> xp_p = rt.load(x->parent);
        rt.store(y->parent, xp_p);
        if (xp_p.null()) {
            setRoot(tx, y_p);
        } else {
            RbNode *xp = resolve(xp_p);
            addNode(tx, xp_p, "rbtree.race.rotate_no_add");
            if (rt.load(xp->left) == x_p)
                rt.store(xp->left, y_p);
            else
                rt.store(xp->right, y_p);
        }
        rt.store(y->left, x_p);
        rt.store(x->parent, y_p);
    }

    void
    rotateRight(pmlib::Tx &tx, pm::PPtr<RbNode> x_p)
    {
        RbNode *x = resolve(x_p);
        pm::PPtr<RbNode> y_p = rt.load(x->left);
        RbNode *y = resolve(y_p);
        addNode(tx, x_p, "rbtree.race.rotate_no_add");
        addNode(tx, y_p, "rbtree.race.rotate_no_add");

        pm::PPtr<RbNode> beta = rt.load(y->right);
        rt.store(x->left, beta);
        if (!beta.null()) {
            addNode(tx, beta, "rbtree.race.rotate_no_add");
            rt.store(resolve(beta)->parent, x_p);
        }
        pm::PPtr<RbNode> xp_p = rt.load(x->parent);
        rt.store(y->parent, xp_p);
        if (xp_p.null()) {
            setRoot(tx, y_p);
        } else {
            RbNode *xp = resolve(xp_p);
            addNode(tx, xp_p, "rbtree.race.rotate_no_add");
            if (rt.load(xp->left) == x_p)
                rt.store(xp->left, y_p);
            else
                rt.store(xp->right, y_p);
        }
        rt.store(y->right, x_p);
        rt.store(x->parent, y_p);
    }

    void
    fixupInsert(pmlib::Tx &tx, pm::PPtr<RbNode> z_p)
    {
        RbRoot *r = op.root<RbRoot>();
        while (true) {
            pm::PPtr<RbNode> p_p = rt.load(resolve(z_p)->parent);
            if (p_p.null() || !isRed(p_p))
                break;
            pm::PPtr<RbNode> g_p = rt.load(resolve(p_p)->parent);
            RbNode *g = resolve(g_p);
            bool parent_is_left = rt.load(g->left) == p_p;
            pm::PPtr<RbNode> uncle_p =
                parent_is_left ? rt.load(g->right) : rt.load(g->left);
            if (isRed(uncle_p)) {
                setColor(tx, p_p, 0);
                setColor(tx, uncle_p, 0);
                setColor(tx, g_p, 1);
                z_p = g_p;
                continue;
            }
            if (parent_is_left) {
                if (rt.load(resolve(p_p)->right) == z_p) {
                    z_p = p_p;
                    rotateLeft(tx, z_p);
                    p_p = rt.load(resolve(z_p)->parent);
                }
                setColor(tx, p_p, 0);
                setColor(tx, g_p, 1);
                rotateRight(tx, g_p);
            } else {
                if (rt.load(resolve(p_p)->left) == z_p) {
                    z_p = p_p;
                    rotateRight(tx, z_p);
                    p_p = rt.load(resolve(z_p)->parent);
                }
                setColor(tx, p_p, 0);
                setColor(tx, g_p, 1);
                rotateLeft(tx, g_p);
            }
            break;
        }
        setColor(tx, rt.load(r->root), 0);
    }

    std::string
    checkSubtree(pm::PPtr<RbNode> p, std::uint64_t lo, std::uint64_t hi)
    {
        if (p.null())
            return "";
        RbNode *n = resolve(p);
        std::uint64_t k = n->key;
        if (k < lo || k > hi)
            return "BST order violated";
        // Red-red violations are possible after splice-style removals
        // (color fixup is elided by design), so only BST order is
        // checked here.
        std::string s = checkSubtree(n->left, lo, k ? k - 1 : 0);
        if (!s.empty())
            return s;
        return checkSubtree(n->right, k + 1, hi);
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
    /** Nodes already TX_ADDed in the open transaction. */
    std::set<Addr> added;
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
RBTree::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "rbtree", sizeof(RbRoot));
    Impl impl(rt, op, cfg.bugs);
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
RBTree::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "rbtree", sizeof(RbRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
RBTree::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "rbtree");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != v)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != expected.size())
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         expected.size());
    return impl.checkStructure();
}

} // namespace xfd::workloads
