#include "workloads/hashmap_tx.hh"

#include <optional>
#include <vector>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr std::uint64_t initialBuckets = 8;

struct HEntry
{
    std::uint64_t key;
    std::uint64_t val;
    pm::PPtr<HEntry> next;
};

/** Bucket array; slots follow the header contiguously. */
struct HBuckets
{
    std::uint64_t nbuckets;
};

struct HRoot
{
    pm::PPtr<HBuckets> buckets;
    std::uint64_t count;
    std::uint64_t seed;
};

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    /**
     * Recovery guard: a failure inside createMap rolls its
     * transaction back, leaving the map unallocated; initialization
     * then simply runs again.
     */
    void
    ensureMap(std::uint64_t seed)
    {
        HRoot *r = op.root<HRoot>();
        if (rt.load(r->buckets).null())
            createMap(seed);
    }

    /** First-time initialization: allocate the bucket array. */
    void
    createMap(std::uint64_t seed)
    {
        HRoot *r = op.root<HRoot>();
        pmlib::Tx tx(op);
        tx.add(r->seed);
        rt.store(r->seed, seed | 1);
        tx.add(r->buckets);
        rt.store(r->buckets, allocBuckets(tx, initialBuckets, false));
        tx.commit();
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        HRoot *r = op.root<HRoot>();
        pmlib::Tx tx(op);

        pm::PPtr<HBuckets> bk_p = rt.load(r->buckets);
        HBuckets *bk = resolve(bk_p);
        std::uint64_t nb = rt.load(bk->nbuckets);
        std::uint64_t h = hashOf(k, nb);

        // Search the chain for an existing key.
        pm::PPtr<HEntry> *slot = slotHost(bk, h);
        pm::PPtr<HEntry> cur_p = rt.load(*slot);
        while (!cur_p.null()) {
            HEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k) {
                if (!bug("hashmap_tx.race.update_no_add"))
                    tx.add(cur->val);
                rt.store(cur->val, v);
                tx.commit();
                return;
            }
            cur_p = rt.load(cur->next);
        }

        // Prepend a fresh entry.
        Addr ea = op.heap().palloc(sizeof(HEntry));
        if (!ea)
            panic("hashmap_tx: pool exhausted");
        HEntry *e = static_cast<HEntry *>(rt.pool().toHost(ea));
        if (!bug("hashmap_tx.race.newentry_no_init"))
            tx.addRange(e, sizeof(HEntry));
        rt.setPm(e, 0, sizeof(HEntry));
        rt.store(e->key, k);
        rt.store(e->val, v);
        rt.store(e->next, rt.load(*slot));
        if (!bug("hashmap_tx.race.slot_no_add"))
            tx.add(*slot);
        if (bug("hashmap_tx.perf.double_add"))
            tx.addUnchecked(*slot);
        rt.store(*slot, pm::PPtr<HEntry>(ea));

        if (!bug("hashmap_tx.race.count_no_add"))
            tx.add(r->count);
        std::uint64_t count = rt.load(r->count) + 1;
        rt.store(r->count, count);

        if (count > nb)
            rebuild(tx, nb * 2);
        tx.commit();
    }

    void
    remove(std::uint64_t k)
    {
        HRoot *r = op.root<HRoot>();
        pmlib::Tx tx(op);
        HBuckets *bk = resolve(rt.load(r->buckets));
        std::uint64_t nb = rt.load(bk->nbuckets);
        pm::PPtr<HEntry> *link = slotHost(bk, hashOf(k, nb));
        pm::PPtr<HEntry> cur_p = rt.load(*link);
        while (!cur_p.null()) {
            HEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k) {
                if (!bug("hashmap_tx.race.remove_no_add"))
                    tx.add(*link);
                rt.store(*link, rt.load(cur->next));
                if (!bug("hashmap_tx.race.remove_count_no_add"))
                    tx.add(r->count);
                rt.store(r->count, rt.load(r->count) - 1);
                tx.commit();
                op.heap().pfree(cur_p.addr());
                return;
            }
            link = &cur->next;
            cur_p = rt.load(*link);
        }
        tx.commit();
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        HRoot *r = op.root<HRoot>();
        HBuckets *bk = resolve(rt.load(r->buckets));
        std::uint64_t nb = rt.load(bk->nbuckets);
        pm::PPtr<HEntry> cur_p = rt.load(*slotHost(bk, hashOf(k, nb)));
        while (!cur_p.null()) {
            HEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k)
                return rt.load(cur->val);
            cur_p = rt.load(cur->next);
        }
        return std::nullopt;
    }

    std::uint64_t count() { return rt.load(op.root<HRoot>()->count); }

    std::uint64_t
    nbuckets()
    {
        return rt.load(resolve(rt.load(op.root<HRoot>()->buckets))
                           ->nbuckets);
    }

    /** Full walk reading every key/value (recovery warm-up). */
    void
    scan()
    {
        HRoot *r = op.root<HRoot>();
        HBuckets *bk = resolve(rt.load(r->buckets));
        std::uint64_t nb = rt.load(bk->nbuckets);
        for (std::uint64_t i = 0; i < nb; i++) {
            pm::PPtr<HEntry> cur_p = rt.load(*slotHost(bk, i));
            while (!cur_p.null()) {
                HEntry *cur = entry(cur_p);
                (void)rt.load(cur->key);
                (void)rt.load(cur->val);
                cur_p = rt.load(cur->next);
            }
        }
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    HBuckets *resolve(pm::PPtr<HBuckets> p) { return p.get(rt.pool()); }
    HEntry *entry(pm::PPtr<HEntry> p) { return p.get(rt.pool()); }

    std::uint64_t
    hashOf(std::uint64_t k, std::uint64_t nb)
    {
        if (nb == 0) {
            // Corrupted bucket metadata after a failure: treat like a
            // wild access so the driver records the crash.
            throw pm::BadPmAccess{0, 0};
        }
        HRoot *r = op.root<HRoot>();
        std::uint64_t seed = rt.load(r->seed);
        std::uint64_t x = k * seed;
        x ^= x >> 33;
        return x % nb;
    }

    /** Host pointer to bucket slot @p i (slots follow the header). */
    pm::PPtr<HEntry> *
    slotHost(HBuckets *bk, std::uint64_t i)
    {
        auto *base = reinterpret_cast<pm::PPtr<HEntry> *>(bk + 1);
        return base + i;
    }

    pm::PPtr<HBuckets>
    allocBuckets(pmlib::Tx &tx, std::uint64_t nb, bool skip_init)
    {
        std::size_t bytes =
            sizeof(HBuckets) + nb * sizeof(pm::PPtr<HEntry>);
        Addr a = op.heap().palloc(bytes);
        if (!a)
            panic("hashmap_tx: pool exhausted");
        auto *bk = static_cast<HBuckets *>(rt.pool().toHost(a));
        if (!skip_init)
            tx.addRange(bk, bytes);
        rt.setPm(bk, 0, bytes);
        rt.store(bk->nbuckets, nb);
        return pm::PPtr<HBuckets>(a);
    }

    /** Grow the bucket array and rehash every entry (inside tx). */
    void
    rebuild(pmlib::Tx &tx, std::uint64_t new_nb)
    {
        HRoot *r = op.root<HRoot>();
        pm::PPtr<HBuckets> old_p = rt.load(r->buckets);
        HBuckets *old_bk = resolve(old_p);
        std::uint64_t old_nb = rt.load(old_bk->nbuckets);

        pm::PPtr<HBuckets> new_p = allocBuckets(
            tx, new_nb, bug("hashmap_tx.race.rebuild_newbuckets_no_init"));
        HBuckets *new_bk = resolve(new_p);

        for (std::uint64_t i = 0; i < old_nb; i++) {
            pm::PPtr<HEntry> cur_p = rt.load(*slotHost(old_bk, i));
            while (!cur_p.null()) {
                HEntry *cur = entry(cur_p);
                pm::PPtr<HEntry> next_p = rt.load(cur->next);
                std::uint64_t h = hashOf(rt.load(cur->key), new_nb);
                pm::PPtr<HEntry> *slot = slotHost(new_bk, h);
                if (!bug("hashmap_tx.race.rebuild_entry_no_add"))
                    tx.add(cur->next);
                rt.store(cur->next, rt.load(*slot));
                // New bucket array is already fully logged.
                rt.store(*slot, cur_p);
                cur_p = next_p;
            }
        }
        if (!bug("hashmap_tx.race.rebuild_bucketsptr_no_add"))
            tx.add(r->buckets);
        rt.store(r->buckets, new_p);
        pendingFree = old_p.addr();
    }

  public:
    /** Deferred free of the replaced bucket array (post-commit). */
    void
    reclaim()
    {
        if (pendingFree) {
            op.heap().pfree(pendingFree);
            pendingFree = 0;
        }
    }

  private:
    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
    Addr pendingFree = 0;
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        impl.reclaim();
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
HashmapTx::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "hashmap_tx", sizeof(HRoot));
    Impl impl(rt, op, cfg.bugs);
    impl.createMap(cfg.seed);
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
HashmapTx::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "hashmap_tx", sizeof(HRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    impl.ensureMap(cfg.seed);
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
HashmapTx::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "hashmap_tx");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != v)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != expected.size())
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
