#include "workloads/wal_btree.hh"

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/wal.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr unsigned maxKeys = 3; // degree-4 B-tree
constexpr std::size_t pageSize = 256;
constexpr std::size_t maxPages = 192;
constexpr std::size_t logCapacity = 1 << 15;
/** Operations folded into one group commit. */
constexpr unsigned batchOps = 3;
/** Group commits between checkpoints. */
constexpr unsigned ckptEvery = 2;

/** Page 0: tree metadata (recovered before anything else). */
struct Meta
{
    std::uint64_t rootPid; ///< 0 = empty tree
    std::uint64_t pageCount;
    std::uint64_t kvCount;
};

/** Any other page: one tree node; child[] holds page ids (0 = null). */
struct Node
{
    std::uint64_t n;
    std::uint64_t keys[maxKeys];
    std::uint64_t vals[maxKeys];
    std::uint64_t child[maxKeys + 1];
};

static_assert(sizeof(Meta) <= pageSize, "meta must fit a page");
static_assert(sizeof(Node) <= pageSize, "node must fit a page");

/** Pool root object: just the WAL area pointer. */
struct WRoot
{
    std::uint64_t walArea;
};

pmlib::WalOptions
walOptions(const BugMask &bugs)
{
    pmlib::WalOptions o;
    o.tornRecordAccepted = bugs.has("wal.race.torn_record_accepted");
    o.commitBeforePayload = bugs.has("wal.race.commit_before_payload");
    o.missingCrcCheck = bugs.has("wal.recovery.missing_crc_check");
    o.truncateBeforeApply = bugs.has("wal.race.truncate_before_apply");
    o.replayPastCheckpoint = bugs.has("wal.sem.replay_past_checkpoint");
    o.unflushedLogHead = bugs.has("wal.race.unflushed_log_head");
    return o;
}

/** B-tree over a volatile buffer pool of WAL'd page images. */
class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op),
          // Volatile bookkeeping read: zero on a half-created pool.
          area(static_cast<Addr>(op.root<WRoot>()->walArea)),
          wal(op, area ? area : op.rootAddr(), logCapacity, pageSize,
              maxPages, walOptions(bugs))
    {
    }

    bool valid() const { return area != 0; }

    /** Fresh-pool initialization: format the log, commit page 0. */
    void
    setup()
    {
        wal.annotate();
        wal.format();
        cache[0] = std::vector<std::uint8_t>(pageSize, 0);
        dirty.insert(0);
        meta()->pageCount = 1;
        flushBatch();
    }

    /**
     * Post-failure initialization: replay the sealed log.
     * @return false when nothing committed survives to read.
     */
    bool
    attach()
    {
        wal.annotate();
        if (!wal.recover())
            return false; // failed before the log was formatted
        if (wal.lastCommittedLsn() == 0)
            return false; // failed before the first group commit
        std::uint64_t pages = meta()->pageCount;
        // A torn meta page would otherwise panic allocPage() during
        // the resumption operations instead of aborting recovery.
        if (pages == 0 || pages > maxPages) {
            throw trace::PostFailureAbort{
                "wal_btree: corrupt page count", trace::here()};
        }
        homeRegistered = pages;
        return true;
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        if (meta()->rootPid == 0) {
            std::uint64_t pid = allocPage();
            Node *nd = node(pid);
            nd->keys[0] = k;
            nd->vals[0] = v;
            nd->n = 1;
            markDirty(pid);
            meta()->rootPid = pid;
            meta()->kvCount++;
            markDirty(0);
            return;
        }

        if (node(meta()->rootPid)->n == maxKeys) {
            // Preemptive root split.
            std::uint64_t nr = allocPage();
            node(nr)->child[0] = meta()->rootPid;
            markDirty(nr);
            splitChild(nr, 0);
            meta()->rootPid = nr;
            markDirty(0);
        }

        std::uint64_t cur = meta()->rootPid;
        for (unsigned depth = 0;; depth++) {
            checkDepth(depth);
            Node *c = node(cur);
            std::uint64_t n = c->n;
            unsigned idx = 0;
            bool found = false;
            for (; idx < n; idx++) {
                if (k == c->keys[idx]) {
                    found = true;
                    break;
                }
                if (k < c->keys[idx])
                    break;
            }
            if (found) {
                // Update in place; no count change.
                c->vals[idx] = v;
                markDirty(cur);
                return;
            }
            if (c->child[0] == 0) {
                // Leaf insertion.
                for (unsigned j = static_cast<unsigned>(n); j > idx;
                     j--) {
                    c->keys[j] = c->keys[j - 1];
                    c->vals[j] = c->vals[j - 1];
                }
                c->keys[idx] = k;
                c->vals[idx] = v;
                c->n = n + 1;
                markDirty(cur);
                meta()->kvCount++;
                markDirty(0);
                return;
            }
            std::uint64_t ch = c->child[idx];
            if (node(ch)->n == maxKeys) {
                splitChild(cur, idx);
                continue; // re-examine this level
            }
            cur = ch;
        }
    }

    void
    remove(std::uint64_t k)
    {
        std::uint64_t cur = meta()->rootPid;
        unsigned idx = 0;
        unsigned depth = 0;
        Node *c = nullptr;
        bool found = false;
        while (cur != 0) {
            checkDepth(depth++);
            c = node(cur);
            std::uint64_t n = c->n;
            found = false;
            for (idx = 0; idx < n; idx++) {
                if (k == c->keys[idx]) {
                    found = true;
                    break;
                }
                if (k < c->keys[idx])
                    break;
            }
            if (found)
                break;
            cur = c->child[idx];
            if (isLeafPid(cur))
                break;
        }
        if (!found && cur != 0) {
            // Possibly in the final leaf.
            c = node(cur);
            std::uint64_t n = c->n;
            for (idx = 0; idx < n; idx++) {
                if (c->keys[idx] == k) {
                    found = true;
                    break;
                }
            }
        }
        if (!found)
            return;

        if (node(cur)->child[0] == 0) {
            removeAt(cur, idx);
        } else {
            // Swap with the predecessor, then remove it from its leaf.
            Node *cc = node(cur);
            std::uint64_t pp = cc->child[idx];
            Node *pl = node(pp);
            while (pl->child[0] != 0) {
                pp = pl->child[pl->n];
                pl = node(pp);
            }
            std::uint64_t pn = pl->n;
            cc->keys[idx] = pl->keys[pn - 1];
            cc->vals[idx] = pl->vals[pn - 1];
            markDirty(cur);
            pl->n = pn - 1;
            markDirty(pp);
        }
        meta()->kvCount--;
        markDirty(0);
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        std::uint64_t cur = meta()->rootPid;
        unsigned depth = 0;
        while (cur != 0) {
            checkDepth(depth++);
            Node *c = node(cur);
            std::uint64_t n = c->n;
            unsigned idx = 0;
            for (; idx < n; idx++) {
                if (k == c->keys[idx])
                    return c->vals[idx];
                if (k < c->keys[idx])
                    break;
            }
            cur = c->child[idx];
        }
        return std::nullopt;
    }

    std::uint64_t count() { return meta()->kvCount; }

    /** Full traversal reading every key/value (recovery warm-up). */
    void scan() { scanNode(meta()->rootPid, 0); }

    /** One logical operation finished; maybe group-commit. */
    void
    endOp()
    {
        if (++opsInBatch >= batchOps)
            flushBatch();
    }

    /**
     * Group commit: register fresh pages, stage every dirty page as
     * one after-image record, seal the batch, periodically truncate.
     */
    void
    flushBatch()
    {
        opsInBatch = 0;
        if (dirty.empty())
            return;
        for (std::uint64_t pid : dirty) {
            if (pid >= homeRegistered) {
                wal.registerPage(pid);
                homeRegistered = pid + 1;
            }
        }
        for (std::uint64_t pid : dirty)
            wal.append(pid, page(pid).data());
        wal.commit();
        cache.clear();
        dirty.clear();
        if (++batchesSinceCkpt >= ckptEvery) {
            wal.checkpoint();
            batchesSinceCkpt = 0;
        }
    }

    /** Final durability point: commit the tail and truncate. */
    void
    finish()
    {
        flushBatch();
        wal.checkpoint();
        batchesSinceCkpt = 0;
    }

  private:
    /** Buffer-pool fetch: cached image, or one traced page read. */
    std::vector<std::uint8_t> &
    page(std::uint64_t pid)
    {
        auto it = cache.find(pid);
        if (it != cache.end())
            return it->second;
        if (pid >= maxPages) {
            throw trace::PostFailureAbort{
                "wal_btree: wild page id", trace::here()};
        }
        Addr a = wal.pageAddr(pid);
        if (a == 0) {
            throw trace::PostFailureAbort{
                "wal_btree: unmapped page", trace::here()};
        }
        std::vector<std::uint8_t> buf(pageSize);
        rt.readPm(buf.data(), rt.pool().toHost(a, pageSize), pageSize);
        return cache.emplace(pid, std::move(buf)).first->second;
    }

    Meta *meta() { return reinterpret_cast<Meta *>(page(0).data()); }

    Node *
    node(std::uint64_t pid)
    {
        Node *nd = reinterpret_cast<Node *>(page(pid).data());
        // A torn home page can carry an impossible fanout, and every
        // caller indexes keys[]/child[] by it — off the page buffer.
        if (nd->n > maxKeys) {
            throw trace::PostFailureAbort{
                "wal_btree: corrupt node fanout", trace::here()};
        }
        return nd;
    }

    void markDirty(std::uint64_t pid) { dirty.insert(pid); }

    bool
    isLeafPid(std::uint64_t pid)
    {
        return pid == 0 || node(pid)->child[0] == 0;
    }

    std::uint64_t
    allocPage()
    {
        std::uint64_t pid = meta()->pageCount;
        if (pid >= maxPages)
            panic("wal_btree: page table exhausted");
        // A recovered meta page can lag the replayed pid graph (the
        // truncate-before-apply defect rolls it back); handing out a
        // pid that is already cached would free a page buffer the
        // caller still holds a Node pointer into.
        if (cache.count(pid)) {
            throw trace::PostFailureAbort{
                "wal_btree: corrupt meta (page id already live)",
                trace::here()};
        }
        meta()->pageCount = pid + 1;
        markDirty(0);
        cache[pid] = std::vector<std::uint8_t>(pageSize, 0);
        markDirty(pid);
        return pid;
    }

    void
    splitChild(std::uint64_t parent_pid, unsigned idx)
    {
        Node *p = node(parent_pid);
        std::uint64_t child_pid = p->child[idx];
        Node *c = node(child_pid);
        std::uint64_t sib_pid = allocPage();
        Node *s = node(sib_pid);

        // Upper third moves to the new sibling.
        s->keys[0] = c->keys[2];
        s->vals[0] = c->vals[2];
        s->child[0] = c->child[2];
        s->child[1] = c->child[3];
        s->n = 1;
        markDirty(sib_pid);

        // Median rises into the parent.
        std::uint64_t pn = p->n;
        for (unsigned j = static_cast<unsigned>(pn); j > idx; j--) {
            p->keys[j] = p->keys[j - 1];
            p->vals[j] = p->vals[j - 1];
            p->child[j + 1] = p->child[j];
        }
        p->keys[idx] = c->keys[1];
        p->vals[idx] = c->vals[1];
        p->child[idx + 1] = sib_pid;
        p->n = pn + 1;
        markDirty(parent_pid);
        c->n = 1;
        markDirty(child_pid);
    }

    void
    removeAt(std::uint64_t pid, unsigned idx)
    {
        Node *leaf = node(pid);
        std::uint64_t n = leaf->n;
        for (unsigned j = idx; j + 1 < n; j++) {
            leaf->keys[j] = leaf->keys[j + 1];
            leaf->vals[j] = leaf->vals[j + 1];
        }
        leaf->n = n - 1;
        markDirty(pid);
    }

    void
    scanNode(std::uint64_t pid, unsigned depth)
    {
        if (pid == 0)
            return;
        checkDepth(depth);
        std::uint64_t cnt = node(pid)->n;
        if (node(pid)->child[0] != 0) {
            for (unsigned i = 0; i <= cnt; i++)
                scanNode(node(pid)->child[i], depth + 1);
        }
    }

    /**
     * A replay that mixed page-image eras (the CRC-scan defect) can
     * stitch the pid graph into a cycle; recovery must abort, not
     * spin.
     */
    static void
    checkDepth(unsigned depth)
    {
        if (depth > 64) {
            throw trace::PostFailureAbort{
                "wal_btree: corrupt tree (page cycle)", trace::here()};
        }
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    Addr area;
    pmlib::Wal wal;

    std::map<std::uint64_t, std::vector<std::uint8_t>> cache;
    std::set<std::uint64_t> dirty;
    std::uint64_t homeRegistered = 0;
    unsigned opsInBatch = 0;
    unsigned batchesSinceCkpt = 0;
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
WalBTree::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "wal_btree", sizeof(WRoot));
    Addr area = op.heap().palloc(
        pmlib::Wal::areaSize(logCapacity, maxPages));
    if (!area)
        panic("wal_btree: pool exhausted");
    WRoot *r = op.root<WRoot>();
    rt.store(r->walArea, static_cast<std::uint64_t>(area));
    rt.persistBarrier(r, sizeof(WRoot));

    Impl impl(rt, op, cfg.bugs);
    impl.setup();
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++) {
        apply(impl, actions[i]);
        impl.endOp();
    }
    impl.flushBatch();
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++) {
        apply(impl, actions[i]);
        impl.endOp();
    }
    // The final checkpoint is the workload's durability point: home
    // pages flushed, descriptor advanced, log truncated.
    impl.finish();
    rt.roiEnd();
}

void
WalBTree::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::openOrCreate(rt, "wal_btree", sizeof(WRoot));
    Impl impl(rt, op, cfg.bugs);
    if (!impl.valid())
        return; // failed before the WAL area was published
    trace::RoiScope roi(rt);
    if (!impl.attach())
        return; // nothing committed yet: an empty, consistent tree
    // Resumption first consults the element count (the paper's
    // Figure 1 pattern), then rereads the tree and continues the
    // operation stream.
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++) {
        apply(impl, actions[i]);
        impl.endOp();
    }
    impl.flushBatch();
}

std::string
WalBTree::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "wal_btree");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != v)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != expected.size())
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
