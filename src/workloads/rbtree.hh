/**
 * @file
 * Transactional persistent red-black tree (PMDK example "rbtree"
 * equivalent). Insertions perform the full CLRS recolor/rotation
 * fixup inside one undo-log transaction; removals splice BST-style
 * (color fixup elided — a documented simplification that preserves
 * lookup correctness, which is all the crash-consistency campaigns
 * exercise).
 */

#ifndef XFD_WORKLOADS_RBTREE_HH
#define XFD_WORKLOADS_RBTREE_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The RB-Tree workload of Table 4. */
class RBTree : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "RB-Tree"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_RBTREE_HH
