/**
 * @file
 * PM-backed Redis engine (Intel pmem-Redis equivalent, scoped to its
 * storage engine). A persistent chained dict holds the keyspace;
 * SET/GET/DEL/DBSIZE commands arrive as in-process requests (the
 * paper tests the engine's update and recovery paths, not sockets).
 *
 * Reproduces §6.3.2 bug 3: initPersistentMemory() writes
 * root->num_dict_entries without transactional protection, so a
 * failure during server initialization races with every post-failure
 * read of the entry count.
 */

#ifndef XFD_WORKLOADS_MINI_REDIS_HH
#define XFD_WORKLOADS_MINI_REDIS_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The Redis workload of Table 4. */
class MiniRedis : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "Redis"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_MINI_REDIS_HH
