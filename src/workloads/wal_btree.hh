/**
 * @file
 * Page-based persistent B-Tree over the redo-only write-ahead log
 * (pmlib/wal) — the WAL-family counterpart of the undo-log btree.
 *
 * Mutations run against a volatile buffer pool of fixed-size page
 * images; a group commit every few operations stages the dirty pages
 * as CRC32-framed after-images and seals them with one WAL commit,
 * and a periodic checkpoint truncates the applied log. Recovery
 * replays the sealed log before the tree is read. The wal.* bug-suite
 * family perturbs the log protocol itself (see pmlib/wal.hh).
 */

#ifndef XFD_WORKLOADS_WAL_BTREE_HH
#define XFD_WORKLOADS_WAL_BTREE_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The write-ahead-logging B-Tree workload. */
class WalBTree : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "WAL-B-Tree"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_WAL_BTREE_HH
