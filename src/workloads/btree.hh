/**
 * @file
 * Transactional persistent B-Tree (PMDK example "btree" equivalent).
 *
 * Degree-4 B-tree (up to 3 keys per node) with preemptive splitting;
 * every mutation runs inside an undo-log transaction with TX_ADD of
 * each touched node. The Table 5 bug suite perturbs individual TX_ADD
 * / initialization sites (see btree.cc for the flag list).
 */

#ifndef XFD_WORKLOADS_BTREE_HH
#define XFD_WORKLOADS_BTREE_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The B-Tree workload of Table 4. */
class BTree : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "B-Tree"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_BTREE_HH
