#include "workloads/ctree.hh"

#include <bit>
#include <optional>

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

/** Either a leaf (isLeaf=1: key/val) or an internal node (diffBit). */
struct CEntry
{
    std::uint64_t isLeaf;
    std::uint64_t key;
    std::uint64_t val;
    std::uint64_t diffBit;
    pm::PPtr<CEntry> child[2];
};

struct CRoot
{
    pm::PPtr<CEntry> root;
    std::uint64_t count;
};

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        CRoot *r = op.root<CRoot>();
        pmlib::Tx tx(op);

        pm::PPtr<CEntry> root_p = rt.load(r->root);
        if (root_p.null()) {
            pm::PPtr<CEntry> leaf = allocLeaf(tx, k, v);
            spliceLink(tx, r->root, leaf);
            bumpCount(tx, 1);
            tx.commit();
            return;
        }

        // Find the closest existing leaf for k.
        pm::PPtr<CEntry> cur_p = root_p;
        while (!rt.load(resolve(cur_p)->isLeaf)) {
            CEntry *cur = resolve(cur_p);
            unsigned dir = bitOf(k, rt.load(cur->diffBit));
            cur_p = rt.load(cur->child[dir]);
        }
        CEntry *leaf = resolve(cur_p);
        std::uint64_t lkey = rt.load(leaf->key);
        if (lkey == k) {
            if (!bug("ctree.race.update_no_add"))
                tx.add(leaf->val);
            rt.store(leaf->val, v);
            tx.commit();
            return;
        }

        // Highest differing bit decides the new node's position.
        std::uint64_t d =
            63 - static_cast<std::uint64_t>(std::countl_zero(k ^ lkey));
        pm::PPtr<CEntry> new_leaf = allocLeaf(tx, k, v);
        pm::PPtr<CEntry> node_p =
            allocNode(tx, d, bug("ctree.race.newnode_no_init"));
        CEntry *node = resolve(node_p);

        // Descend again to the splice point: the first entry whose
        // discriminating bit is below d (or a leaf).
        pm::PPtr<CEntry> *link = &r->root;
        cur_p = rt.load(*link);
        for (;;) {
            CEntry *cur = resolve(cur_p);
            if (rt.load(cur->isLeaf) || rt.load(cur->diffBit) < d)
                break;
            link = &cur->child[bitOf(k, rt.load(cur->diffBit))];
            cur_p = rt.load(*link);
        }
        unsigned kdir = bitOf(k, d);
        rt.store(node->child[kdir], new_leaf);
        rt.store(node->child[1 - kdir], cur_p);
        spliceLink(tx, *link, node_p);
        bumpCount(tx, 1);
        tx.commit();
    }

    void
    remove(std::uint64_t k)
    {
        CRoot *r = op.root<CRoot>();
        pmlib::Tx tx(op);
        pm::PPtr<CEntry> root_p = rt.load(r->root);
        if (root_p.null()) {
            tx.commit();
            return;
        }

        // Track the link to the current entry and to its parent.
        pm::PPtr<CEntry> *link = &r->root;
        pm::PPtr<CEntry> *parent_link = nullptr;
        pm::PPtr<CEntry> parent_p;
        pm::PPtr<CEntry> cur_p = root_p;
        unsigned dir = 0;
        while (!rt.load(resolve(cur_p)->isLeaf)) {
            CEntry *cur = resolve(cur_p);
            parent_link = link;
            parent_p = cur_p;
            dir = bitOf(k, rt.load(cur->diffBit));
            link = &cur->child[dir];
            cur_p = rt.load(*link);
        }
        CEntry *leaf = resolve(cur_p);
        if (rt.load(leaf->key) != k) {
            tx.commit();
            return;
        }

        if (!parent_link) {
            // Removing the only leaf.
            spliceLink(tx, r->root, pm::PPtr<CEntry>(),
                       "ctree.race.remove_link_no_add");
        } else {
            // Replace the parent with the leaf's sibling.
            CEntry *parent = resolve(parent_p);
            pm::PPtr<CEntry> sibling = rt.load(parent->child[1 - dir]);
            spliceLink(tx, *parent_link, sibling,
                       "ctree.race.remove_link_no_add");
        }
        bumpCount(tx, -1);
        // Deallocation is deferred past commit (PMDK's TX_FREE
        // semantics): an abort must be able to restore the links.
        tx.commit();
        if (!parent_p.null())
            op.heap().pfree(parent_p.addr());
        op.heap().pfree(cur_p.addr());
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        CRoot *r = op.root<CRoot>();
        pm::PPtr<CEntry> cur_p = rt.load(r->root);
        if (cur_p.null())
            return std::nullopt;
        while (!rt.load(resolve(cur_p)->isLeaf)) {
            CEntry *cur = resolve(cur_p);
            cur_p = rt.load(cur->child[bitOf(k, rt.load(cur->diffBit))]);
        }
        CEntry *leaf = resolve(cur_p);
        if (rt.load(leaf->key) != k)
            return std::nullopt;
        return rt.load(leaf->val);
    }

    std::uint64_t count() { return rt.load(op.root<CRoot>()->count); }

    /** Full traversal reading every key/value (recovery warm-up). */
    void
    scan()
    {
        scanEntry(rt.load(op.root<CRoot>()->root));
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    CEntry *resolve(pm::PPtr<CEntry> p) { return p.get(rt.pool()); }

    void
    scanEntry(pm::PPtr<CEntry> p)
    {
        if (p.null())
            return;
        CEntry *e = resolve(p);
        if (rt.load(e->isLeaf)) {
            (void)rt.load(e->key);
            (void)rt.load(e->val);
            return;
        }
        (void)rt.load(e->diffBit);
        scanEntry(rt.load(e->child[0]));
        scanEntry(rt.load(e->child[1]));
    }

    static unsigned
    bitOf(std::uint64_t k, std::uint64_t bit)
    {
        return static_cast<unsigned>((k >> bit) & 1);
    }

    pm::PPtr<CEntry>
    allocLeaf(pmlib::Tx &tx, std::uint64_t k, std::uint64_t v)
    {
        Addr a = op.heap().palloc(sizeof(CEntry));
        if (!a)
            panic("ctree: pool exhausted");
        CEntry *e = static_cast<CEntry *>(rt.pool().toHost(a));
        if (!bug("ctree.race.newleaf_no_init"))
            tx.addRange(e, sizeof(CEntry));
        rt.setPm(e, 0, sizeof(CEntry));
        rt.store(e->isLeaf, std::uint64_t{1});
        rt.store(e->key, k);
        rt.store(e->val, v);
        return pm::PPtr<CEntry>(a);
    }

    pm::PPtr<CEntry>
    allocNode(pmlib::Tx &tx, std::uint64_t diff_bit, bool skip_init)
    {
        Addr a = op.heap().palloc(sizeof(CEntry));
        if (!a)
            panic("ctree: pool exhausted");
        CEntry *e = static_cast<CEntry *>(rt.pool().toHost(a));
        if (!skip_init)
            tx.addRange(e, sizeof(CEntry));
        rt.setPm(e, 0, sizeof(CEntry));
        rt.store(e->diffBit, diff_bit);
        return pm::PPtr<CEntry>(a);
    }

    /** TX_ADD + update of one child/root link. */
    void
    spliceLink(pmlib::Tx &tx, pm::PPtr<CEntry> &link,
               pm::PPtr<CEntry> target,
               const char *flag = "ctree.race.link_no_add")
    {
        if (!bug(flag))
            tx.add(link);
        if (bug("ctree.perf.double_add"))
            tx.addUnchecked(link);
        rt.store(link, target);
    }

    void
    bumpCount(pmlib::Tx &tx, int delta)
    {
        CRoot *r = op.root<CRoot>();
        if (!bug("ctree.race.count_no_add"))
            tx.add(r->count);
        rt.store(r->count,
                 rt.load(r->count) + static_cast<std::uint64_t>(delta));
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
CTree::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op = pmlib::ObjPool::create(rt, "ctree", sizeof(CRoot));
    Impl impl(rt, op, cfg.bugs);
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
CTree::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "ctree", sizeof(CRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
CTree::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "ctree");
    Impl impl(rt, op, cfg.bugs);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    for (const auto &[k, v] : expected) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != v)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != expected.size())
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
