/**
 * @file
 * Persistent ring log with mirrored cursors and a double-written
 * checkpoint descriptor.
 *
 * The log keeps two copies of its record count (`wr`/`chk`) and
 * updates both inside one fence epoch; a checkpoint installs a
 * descriptor pointer plus a valid flag the same way. Because no
 * ordering point separates the paired stores, the all-updates
 * (footnote-3) crash image always holds both halves or neither — the
 * states where the pair is torn exist only on *partial* crash images,
 * which makes this the workload for the --crash-states recall tier:
 * its `ringlog.recovery.*` defects are invisible to anchor-only
 * detection by construction.
 *
 * All four protocol fields are registered as commit variables, so
 * recovery's guard reads of them are benign cross-failure races (the
 * Fig. 2 pattern) and the clean workload stays finding-free.
 */

#ifndef XFD_WORKLOADS_RINGLOG_HH
#define XFD_WORKLOADS_RINGLOG_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The ring-log workload (crash-state exploration suite). */
class RingLog : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "Ring-Log"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_RINGLOG_HH
