#include "workloads/hashmap_atomic.hh"

#include <list>
#include <map>
#include <optional>

#include "common/logging.hh"
#include "pmlib/atomic.hh"
#include "pmlib/objpool.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr std::uint64_t nBuckets = 16;

struct AEntry
{
    std::uint64_t key;
    std::uint64_t val;
    pm::PPtr<AEntry> next;
};

/** The hashmap object, heap-allocated (PMDK POBJ_ZNEW idiom). */
struct AMap
{
    std::uint64_t count;
    std::uint32_t countDirty; ///< commit variable versioning `count`
    std::uint32_t pad;
    std::uint64_t seed;
    std::uint64_t hashFunA; ///< §6.3.2 bug 1: may never be persisted
    std::uint64_t hashFunB;
    std::uint64_t nbuckets;
    pm::PPtr<AEntry> bucket[nBuckets];
};

/** Pool root: just the pointer to the heap-allocated map. */
struct ARoot
{
    pm::PPtr<AMap> map;
};

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    /** create_hashmap() of Fig. 14a. */
    void
    createMap(std::uint64_t seed)
    {
        ARoot *r = op.root<ARoot>();
        bool shipped_meta = bug("hashmap_atomic.shipped.meta_no_persist");
        bool shipped_count = bug("hashmap_atomic.shipped.count_uninit");
        bool no_buckets = bug("hashmap_atomic.race.buckets_no_ctor");

        // The fixed idiom initializes everything inside the allocation
        // constructor, so it is persisted before the map is published.
        bool ok = op.heap().allocAtomic(
            r->map, sizeof(AMap), [&](trace::PmRuntime &rt, AMap *m) {
                if (!shipped_meta)
                    storeMeta(m, seed);
                if (!shipped_count)
                    rt.store(m->count, std::uint64_t{0});
                rt.store(m->countDirty, std::uint32_t{0});
                rt.store(m->nbuckets, nBuckets);
                if (!no_buckets) {
                    for (unsigned i = 0; i < nBuckets; i++)
                        rt.store(m->bucket[i], pm::PPtr<AEntry>());
                }
            });
        if (!ok)
            panic("hashmap_atomic: pool exhausted");

        if (shipped_meta) {
            // As shipped (Fig. 14a lines 3-4): metadata assigned after
            // allocation, never persisted.
            storeMeta(map(), seed);
        }
        if (bug("hashmap_atomic.race.seed_no_persist")) {
            // Variant: the seed alone is re-written without persist.
            rt.store(map()->seed, (seed + 1) | 1);
        }
        annotate();

        if (!shipped_count) {
            // Commit the initial count through the dirty protocol so
            // it carries a committed version from the start.
            AMap *m = map();
            setDirty(m, 1u);
            rt.store(m->count, std::uint64_t{0});
            rt.persistBarrier(&m->count, sizeof(m->count));
            setDirty(m, 0u);
        }
    }

    /** Register the commit variable (Table 2 annotation, 5 lines). */
    void
    annotate()
    {
        AMap *m = map();
        rt.addCommitVar(m->countDirty);
        rt.addCommitRange(m->countDirty, &m->count, sizeof(m->count));
    }

    void
    insert(std::uint64_t k, std::uint64_t v)
    {
        AMap *m = map();
        bool inverted = bug("hashmap_atomic.sem.dirty_inverted");

        if (bug("hashmap_atomic.perf.flush_clean_count")) {
            // The line holding count/count_dirty is clean here.
            rt.persistBarrier(&m->count, sizeof(m->count));
        }

        // Allocate and fill the entry first (outside the dirty
        // window, as with a two-phase alloc-then-list-insert).
        Addr ea = op.heap().palloc(sizeof(AEntry));
        if (!ea)
            panic("hashmap_atomic: pool exhausted");
        AEntry *e = static_cast<AEntry *>(rt.pool().toHost(ea));
        std::uint64_t h = hashOf(k);
        pm::PPtr<AEntry> *slot = &m->bucket[h];
        rt.store(e->key, k);
        rt.store(e->val, v);
        if (!bug("hashmap_atomic.race.next_write_after_persist"))
            rt.store(e->next, rt.load(*slot));

        if (bug("hashmap_atomic.race.entry_no_persist")) {
            // no persist of the entry contents at all
        } else if (bug("hashmap_atomic.race.entry_partial_persist")) {
            rt.persistBarrier(&e->key, sizeof(e->key));
        } else if (bug("hashmap_atomic.race.entry_clwb_no_fence")) {
            rt.clwb(e, sizeof(AEntry));
        } else {
            rt.persistBarrier(e, sizeof(AEntry));
            if (bug("hashmap_atomic.perf.double_persist_entry"))
                rt.persistBarrier(e, sizeof(AEntry));
        }
        if (bug("hashmap_atomic.race.next_write_after_persist"))
            rt.store(e->next, rt.load(*slot));

        // Open the count window: count_dirty = 1 (Fig. 14b). The
        // publish and the count update happen inside it.
        setDirty(m, inverted ? 0u : 1u);

        // Publish into the bucket chain.
        if (bug("hashmap_atomic.race.slot_plain_store")) {
            rt.store(*slot, pm::PPtr<AEntry>(ea));
        } else if (bug("hashmap_atomic.race.slot_clwb_no_fence") ||
                   bug("hashmap_atomic.race.entry_clwb_no_fence")) {
            // Without a fence of its own, the publish leaves both the
            // entry and the link writeback-pending.
            rt.store(*slot, pm::PPtr<AEntry>(ea));
            rt.clwb(slot, sizeof(*slot));
        } else {
            pmlib::atomicStore(rt, *slot, pm::PPtr<AEntry>(ea));
        }

        // Bump count inside the dirty window (Fig. 14b lines 12-14).
        if (!bug("hashmap_atomic.sem.count_outside_window"))
            bumpCount(m, 1);

        // Close the window: count_dirty = 0.
        setDirty(m, inverted ? 1u : 0u);

        if (bug("hashmap_atomic.sem.count_outside_window"))
            bumpCount(m, 1);
    }

    void
    remove(std::uint64_t k)
    {
        AMap *m = map();
        std::uint64_t h = hashOf(k);
        pm::PPtr<AEntry> *link = &m->bucket[h];
        pm::PPtr<AEntry> cur_p = rt.load(*link);
        while (!cur_p.null()) {
            AEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k)
                break;
            link = &cur->next;
            cur_p = rt.load(*link);
        }
        if (cur_p.null())
            return;

        bool no_dirty = bug("hashmap_atomic.sem.remove_no_dirty");
        if (!no_dirty)
            setDirty(m, 1u);
        AEntry *cur = entry(cur_p);
        pm::PPtr<AEntry> next = rt.load(cur->next);
        if (bug("hashmap_atomic.race.remove_slot_plain_store"))
            rt.store(*link, next);
        else
            pmlib::atomicStore(rt, *link, next);
        bumpCount(m, -1,
                  bug("hashmap_atomic.race.remove_count_no_persist"));
        if (!no_dirty)
            setDirty(m, 0u);
        op.heap().pfree(cur_p.addr());
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k)
    {
        AMap *m = map();
        pm::PPtr<AEntry> cur_p = rt.load(m->bucket[hashOf(k)]);
        while (!cur_p.null()) {
            AEntry *cur = entry(cur_p);
            if (rt.load(cur->key) == k)
                return rt.load(cur->val);
            cur_p = rt.load(cur->next);
        }
        return std::nullopt;
    }

    std::uint64_t count() { return rt.load(map()->count); }

    /** @return whether the map object exists (create may have failed). */
    bool
    mapExists()
    {
        ARoot *r = op.root<ARoot>();
        return !rt.load(r->map).null();
    }

    /** Recovery entry point: recreate a missing map, else recount. */
    void
    recoverOrCreate(std::uint64_t seed)
    {
        if (!mapExists()) {
            // The failure hit before the map was ever published;
            // initialization simply runs again.
            createMap(seed);
            return;
        }
        recover();
        // Startup reports the restored entry count (this read is what
        // exposes §6.3.2 bug 2 when count was never initialized).
        (void)rt.load(map()->count);
    }

    /** hm_atomic recovery: recount the buckets when dirty. */
    void
    recover()
    {
        AMap *m = map();
        annotate();
        // Reading the commit variable is the benign cross-failure race.
        if (rt.load(m->countDirty) == 0)
            return;
        if (bug("hashmap_atomic.sem.no_recount")) {
            // Buggy recovery trusts the dirty count.
            rt.store(m->countDirty, std::uint32_t{0});
            rt.persistBarrier(&m->countDirty, sizeof(m->countDirty));
            return;
        }
        std::uint64_t n = 0;
        for (unsigned i = 0; i < nBuckets; i++) {
            pm::PPtr<AEntry> cur_p = rt.load(m->bucket[i]);
            while (!cur_p.null()) {
                n++;
                cur_p = rt.load(entry(cur_p)->next);
            }
        }
        rt.store(m->count, n);
        rt.persistBarrier(&m->count, sizeof(m->count));
        rt.store(m->countDirty, std::uint32_t{0});
        rt.persistBarrier(&m->countDirty, sizeof(m->countDirty));
    }

    /** Full walk reading every key/value (recovery warm-up). */
    void
    scan()
    {
        AMap *m = map();
        for (unsigned i = 0; i < nBuckets; i++) {
            pm::PPtr<AEntry> cur_p = rt.load(m->bucket[i]);
            while (!cur_p.null()) {
                AEntry *cur = entry(cur_p);
                (void)rt.load(cur->key);
                (void)rt.load(cur->val);
                cur_p = rt.load(cur->next);
            }
        }
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    /** Metadata assignment of Fig. 14a lines 3-4. */
    void
    storeMeta(AMap *m, std::uint64_t seed)
    {
        rt.store(m->seed, seed | 1);
        rt.store(m->hashFunA, static_cast<std::uint64_t>(
                                  (seed * 0x9e3779b97f4a7c15ull) | 1));
        rt.store(m->hashFunB, seed ^ 0x5bd1e995u);
    }

    AMap *
    map()
    {
        ARoot *r = op.root<ARoot>();
        return rt.load(r->map).get(rt.pool());
    }

    AEntry *entry(pm::PPtr<AEntry> p) { return p.get(rt.pool()); }

    std::uint64_t
    hashOf(std::uint64_t k)
    {
        AMap *m = map();
        // The hash mixes the metadata of Fig. 14a: reading it
        // post-failure is §6.3.2 bug 1 when it never persisted.
        std::uint64_t a = rt.load(m->hashFunA);
        std::uint64_t b = rt.load(m->hashFunB);
        std::uint64_t s = rt.load(m->seed);
        std::uint64_t x = (k * a + b) ^ s;
        x ^= x >> 29;
        std::uint64_t nb = rt.load(m->nbuckets);
        if (nb == 0)
            throw pm::BadPmAccess{0, 0};
        return x % nb;
    }

    void
    setDirty(AMap *m, std::uint32_t v)
    {
        rt.store(m->countDirty, v);
        rt.persistBarrier(&m->countDirty, sizeof(m->countDirty));
    }

    void
    bumpCount(AMap *m, int delta, bool skip_persist = false)
    {
        if (bug("hashmap_atomic.race.count_no_persist"))
            skip_persist = true;
        rt.store(m->count,
                 rt.load(m->count) + static_cast<std::uint64_t>(delta));
        if (!skip_persist)
            rt.persistBarrier(&m->count, sizeof(m->count));
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
};

/**
 * Reference model with PMDK hashmap_atomic list semantics: duplicate
 * keys prepend, remove drops the newest match, get sees the newest.
 */
struct ListModel
{
    std::map<std::uint64_t, std::list<std::uint64_t>> vals;
    std::size_t entries = 0;

    void
    apply(const KvAction &a)
    {
        switch (a.op) {
          case KvOp::Insert:
            vals[a.key].push_front(a.val);
            entries++;
            break;
          case KvOp::Remove: {
            auto it = vals.find(a.key);
            if (it != vals.end() && !it->second.empty()) {
                it->second.pop_front();
                entries--;
                if (it->second.empty())
                    vals.erase(it);
            }
            break;
          }
          case KvOp::Get:
            break;
        }
    }
};

void
apply(Impl &impl, const KvAction &a)
{
    switch (a.op) {
      case KvOp::Insert:
        impl.insert(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.remove(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key);
        break;
    }
}

} // namespace

void
HashmapAtomic::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "hashmap_atomic", sizeof(ARoot));
    Impl impl(rt, op, cfg.bugs);
    impl.createMap(cfg.seed);
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
HashmapAtomic::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "hashmap_atomic", sizeof(ARoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    impl.recoverOrCreate(cfg.seed);
    (void)impl.count();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
HashmapAtomic::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "hashmap_atomic");
    Impl impl(rt, op, cfg.bugs);
    ListModel model;
    for (const auto &a : kvActions(cfg, cfg.initOps + cfg.testOps))
        model.apply(a);
    for (const auto &[k, vs] : model.vals) {
        auto got = impl.get(k);
        if (!got)
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        if (*got != vs.front())
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.count() != model.entries)
        return strprintf("count %llu != expected %zu",
                         static_cast<unsigned long long>(impl.count()),
                         model.entries);
    return "";
}

} // namespace xfd::workloads
