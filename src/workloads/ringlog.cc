#include "workloads/ringlog.hh"

#include <algorithm>

#include "common/logging.hh"
#include "pmlib/objpool.hh"

namespace xfd::workloads
{

namespace
{

constexpr std::uint64_t nSlots = 64;
constexpr unsigned checkpointEvery = 4;

/** Checkpoint descriptor: a summary of the log up to `count`. */
struct CpRec
{
    std::uint64_t count;
    std::uint64_t sum;
};

struct Ring
{
    /** Mirrored record counters, updated in one fence epoch. */
    std::uint64_t wr;
    std::uint64_t chk;
    /** Checkpoint descriptor install pair (one fence epoch). */
    std::uint64_t cpValid;
    pm::PPtr<CpRec> cp;
    std::uint64_t slots[nSlots];
};

struct RingRoot
{
    pm::PPtr<Ring> ring;
};

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs)
        : rt(rt), op(op), bugs(bugs)
    {
    }

    void
    createRing()
    {
        RingRoot *r = op.root<RingRoot>();
        bool ok = op.heap().allocAtomic(
            r->ring, sizeof(Ring), [&](trace::PmRuntime &rt, Ring *g) {
                rt.store(g->wr, std::uint64_t{0});
                rt.store(g->chk, std::uint64_t{0});
                rt.store(g->cpValid, std::uint64_t{0});
                rt.store(g->cp, pm::PPtr<CpRec>());
                for (std::uint64_t i = 0; i < nSlots; i++)
                    rt.store(g->slots[i], std::uint64_t{0});
            });
        if (!ok)
            panic("ringlog: pool exhausted");
        annotate();
    }

    /**
     * Register the protocol fields as commit variables (Table 2):
     * recovery's guard reads of them are benign, and dropping one of
     * their writes legitimately exposes the previous epoch.
     */
    void
    annotate()
    {
        Ring *g = ring();
        rt.addCommitVar(g->wr);
        rt.addCommitVar(g->chk);
        rt.addCommitVar(g->cpValid);
        rt.addCommitVar(g->cp);
    }

    void
    append(std::uint64_t v)
    {
        Ring *g = ring();
        std::uint64_t n = rt.load(g->wr);
        // Payload first, persisted in its own epoch, so the record is
        // durable before the cursors can ever cover it.
        rt.store(g->slots[n % nSlots], v);
        rt.persistBarrier(&g->slots[n % nSlots],
                          sizeof(g->slots[0]));
        // Mirror-cursor epoch: both counters stored back to back and
        // persisted by one barrier. No ordering point separates them,
        // so only a partial crash image can tear the pair.
        rt.store(g->wr, n + 1);
        rt.store(g->chk, n + 1);
        rt.persistBarrier(&g->wr, sizeof(g->wr) + sizeof(g->chk));
    }

    /** Summarize the log into a fresh descriptor and install it. */
    void
    checkpoint()
    {
        Ring *g = ring();
        std::uint64_t n = rt.load(g->wr);
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < std::min(n, nSlots); i++)
            sum += rt.load(g->slots[i]);

        Addr ra = op.heap().palloc(sizeof(CpRec));
        if (!ra)
            panic("ringlog: pool exhausted");
        CpRec *rec = static_cast<CpRec *>(rt.pool().toHost(ra));
        rt.store(rec->count, n);
        rt.store(rec->sum, sum);
        rt.persistBarrier(rec, sizeof(CpRec));

        // Descriptor install epoch. The defective variant raises the
        // valid flag before the pointer lands, so a crash image that
        // persists only the flag points recovery at the previous
        // (possibly null) descriptor. Superseded descriptors are
        // deliberately leaked: freeing them would leave a torn
        // install (flag applied, pointer dropped) aimed at reclaimed
        // memory even in the bug-free variant.
        if (bug("ringlog.recovery.torn_pair_wild")) {
            rt.store(g->cpValid, std::uint64_t{1});
            rt.store(g->cp, pm::PPtr<CpRec>(ra));
        } else {
            rt.store(g->cp, pm::PPtr<CpRec>(ra));
            rt.store(g->cpValid, std::uint64_t{1});
        }
        rt.persistBarrier(&g->cpValid,
                          sizeof(g->cpValid) + sizeof(g->cp));
    }

    /** Recovery: reconcile the cursors, then reload the checkpoint. */
    void
    recover()
    {
        Ring *g = ring();
        annotate();
        std::uint64_t a = rt.load(g->wr);
        std::uint64_t b = rt.load(g->chk);
        if (a != b) {
            if (bug("ringlog.recovery.mirror_mismatch_abort")) {
                // Defective recovery treats the torn pair as fatal
                // corruption instead of the expected crash artifact.
                throw trace::PostFailureAbort{
                    strprintf("ringlog: mirror counters diverged "
                              "(wr=%llu chk=%llu)",
                              static_cast<unsigned long long>(a),
                              static_cast<unsigned long long>(b)),
                    trace::here()};
            }
            // The smaller cursor is the last count both copies agree
            // covers durable records; repair the pair to it.
            std::uint64_t n = std::min(a, b);
            rt.store(g->wr, n);
            rt.store(g->chk, n);
            rt.persistBarrier(&g->wr, sizeof(g->wr) + sizeof(g->chk));
        }

        if (rt.load(g->cpValid)) {
            pm::PPtr<CpRec> cp = rt.load(g->cp);
            if (bug("ringlog.recovery.torn_pair_wild")) {
                // Defective recovery trusts the flag alone; on the
                // torn install image the pointer is still null/stale
                // and the dereference goes wild.
                CpRec *rec =
                    static_cast<CpRec *>(rt.pool().toHost(cp.addr(),
                                                          sizeof(CpRec)));
                (void)rt.load(rec->count);
                (void)rt.load(rec->sum);
            } else if (!cp.null()) {
                CpRec *rec = cp.get(rt.pool());
                (void)rt.load(rec->count);
                (void)rt.load(rec->sum);
            }
        }
    }

    bool
    ringExists()
    {
        RingRoot *r = op.root<RingRoot>();
        return !rt.load(r->ring).null();
    }

    std::uint64_t count() { return rt.load(ring()->wr); }

    std::uint64_t
    slotAt(std::uint64_t i)
    {
        return rt.load(ring()->slots[i % nSlots]);
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    Ring *
    ring()
    {
        RingRoot *r = op.root<RingRoot>();
        return rt.load(r->ring).get(rt.pool());
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
};

void
run(Impl &impl, const WorkloadConfig &cfg, unsigned from, unsigned to)
{
    for (unsigned i = from; i < to; i++) {
        Rng rng(cfg.seed * 31 + i);
        impl.append(rng.next() | 1);
        if ((i + 1) % checkpointEvery == 0)
            impl.checkpoint();
    }
}

} // namespace

void
RingLog::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "ringlog", sizeof(RingRoot));
    Impl impl(rt, op, cfg.bugs);
    impl.createRing();
    run(impl, cfg, 0, cfg.initOps);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    run(impl, cfg, cfg.initOps, cfg.initOps + cfg.testOps);
    rt.roiEnd();
}

void
RingLog::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::openOrCreate(rt, "ringlog", sizeof(RingRoot));
    Impl impl(rt, op, cfg.bugs);
    trace::RoiScope roi(rt);
    if (!impl.ringExists()) {
        // The failure hit before the ring was published; initialize
        // from scratch like first boot.
        impl.createRing();
    } else {
        impl.recover();
    }
    unsigned done = cfg.initOps + cfg.testOps;
    run(impl, cfg, done, done + cfg.postOps);
}

std::string
RingLog::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "ringlog");
    Impl impl(rt, op, cfg.bugs);
    unsigned total = cfg.initOps + cfg.testOps;
    if (impl.count() != total)
        return strprintf("count %llu != expected %u",
                         static_cast<unsigned long long>(impl.count()),
                         total);
    unsigned from = total > nSlots ? total - nSlots : 0;
    for (unsigned i = from; i < total; i++) {
        Rng rng(cfg.seed * 31 + i);
        std::uint64_t want = rng.next() | 1;
        if (impl.slotAt(i) != want)
            return strprintf("slot %u holds the wrong record", i);
    }
    return "";
}

} // namespace xfd::workloads
