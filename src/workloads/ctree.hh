/**
 * @file
 * Transactional persistent crit-bit tree (PMDK example "ctree"
 * equivalent): internal nodes discriminate on the highest differing
 * key bit, leaves hold the key/value pairs. Every mutation runs in an
 * undo-log transaction.
 */

#ifndef XFD_WORKLOADS_CTREE_HH
#define XFD_WORKLOADS_CTREE_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The C-Tree workload of Table 4. */
class CTree : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "C-Tree"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_CTREE_HH
