/**
 * @file
 * Deterministic key/value operation sequences shared by the map-like
 * workloads, plus the volatile reference model their functional tests
 * compare against.
 */

#ifndef XFD_WORKLOADS_KV_ACTIONS_HH
#define XFD_WORKLOADS_KV_ACTIONS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** Operation kinds in a generated sequence. */
enum class KvOp : std::uint8_t { Insert, Remove, Get };

/** One generated operation. */
struct KvAction
{
    KvOp op;
    std::uint64_t key;
    std::uint64_t val;
};

/**
 * Generate the first @p total operations for @p cfg. The first
 * cfg.initOps operations are always insertions (pool initialization);
 * later ones mix inserts (60%), removes of previously inserted keys
 * (20%) and gets (20%). Fully deterministic in cfg.seed.
 */
std::vector<KvAction> kvActions(const WorkloadConfig &cfg,
                                unsigned total);

/** Expected map contents after the first @p total operations. */
std::map<std::uint64_t, std::uint64_t>
kvExpected(const WorkloadConfig &cfg, unsigned total);

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_KV_ACTIONS_HH
