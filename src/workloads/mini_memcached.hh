/**
 * @file
 * PM-backed Memcached engine (Lenovo memcached-pmem equivalent,
 * scoped to its storage engine). Items live in persistent bucket
 * chains and are published with failure-atomic link updates; the LRU
 * index is volatile and rebuilt from the buckets on restart, and
 * recovery recomputes the item count the same way.
 */

#ifndef XFD_WORKLOADS_MINI_MEMCACHED_HH
#define XFD_WORKLOADS_MINI_MEMCACHED_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The Memcached workload of Table 4. */
class MiniMemcached : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "Memcached"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_MINI_MEMCACHED_HH
