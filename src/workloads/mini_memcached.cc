#include "workloads/mini_memcached.hh"

#include <cstring>
#include <list>
#include <optional>
#include <unordered_map>

#include "common/logging.hh"
#include "pmlib/atomic.hh"
#include "pmlib/objpool.hh"
#include "workloads/kv_actions.hh"

namespace xfd::workloads
{

namespace
{

constexpr std::uint64_t mcBuckets = 64;
constexpr std::size_t mcValBytes = 32;

struct McItem
{
    std::uint64_t key;
    std::uint32_t nbytes;
    std::uint32_t flags;
    char data[mcValBytes];
    pm::PPtr<McItem> next;
};

struct McRoot
{
    std::uint64_t nbuckets;
    std::uint64_t itemCount; ///< recomputed from buckets on restart
    /** Validity flag, persisted last during creation (commit var). */
    std::uint64_t initialized;
    pm::PPtr<McItem> bucket[mcBuckets];
};

void
renderVal(std::uint64_t v, char out[mcValBytes])
{
    std::memset(out, 0, mcValBytes);
    std::snprintf(out, mcValBytes, "item-%016llx",
                  static_cast<unsigned long long>(v));
}

class Impl
{
  public:
    Impl(trace::PmRuntime &rt, pmlib::ObjPool &op, const BugMask &bugs,
         std::uint64_t capacity)
        : rt(rt), op(op), bugs(bugs), capacity(capacity)
    {
    }

    void
    createCache()
    {
        McRoot *r = op.root<McRoot>();
        rt.store(r->nbuckets, mcBuckets);
        rt.store(r->itemCount, std::uint64_t{0});
        for (unsigned i = 0; i < mcBuckets; i++)
            rt.store(r->bucket[i], pm::PPtr<McItem>());
        rt.persistBarrier(r, sizeof(McRoot));
        // The validity flag commits initialization; the atomic store
        // guarantees restart sees either 0 or a persisted 1.
        pmlib::atomicStore(rt, r->initialized, std::uint64_t{1});
    }

    /** Restart path: recount items and rebuild the volatile LRU. */
    void
    rebuildIndex()
    {
        McRoot *r = op.root<McRoot>();
        if (rt.load(r->initialized) == 0) {
            // The failure preempted initialization: start fresh.
            createCache();
            return;
        }
        lru.clear();
        std::uint64_t n = 0;
        for (unsigned i = 0; i < mcBuckets; i++) {
            pm::PPtr<McItem> cur_p = rt.load(r->bucket[i]);
            while (!cur_p.null()) {
                lru.push_back(cur_p.addr());
                n++;
                cur_p = rt.load(item(cur_p)->next);
            }
        }
        rt.store(r->itemCount, n);
        rt.persistBarrier(&r->itemCount, sizeof(r->itemCount));
    }

    void
    set(std::uint64_t k, std::uint64_t v)
    {
        McRoot *r = op.root<McRoot>();
        char buf[mcValBytes];
        renderVal(v, buf);

        // Build the new item out of place.
        Addr ia = op.heap().palloc(sizeof(McItem));
        if (!ia)
            panic("memcached: pool exhausted");
        McItem *it = static_cast<McItem *>(rt.pool().toHost(ia));
        rt.store(it->key, k);
        rt.store(it->nbytes,
                 static_cast<std::uint32_t>(std::strlen(buf)));
        rt.store(it->flags, std::uint32_t{0});
        rt.copyToPm(it->data, buf, mcValBytes);

        // Find an existing item to replace.
        pm::PPtr<McItem> *link = &r->bucket[hashOf(k)];
        pm::PPtr<McItem> old_p = rt.load(*link);
        while (!old_p.null() && rt.load(item(old_p)->key) != k) {
            link = &item(old_p)->next;
            old_p = rt.load(*link);
        }
        pm::PPtr<McItem> chain =
            old_p.null() ? rt.load(*link) : rt.load(item(old_p)->next);
        rt.store(it->next, chain);
        if (!bug("memcached.race.item_no_persist"))
            rt.persistBarrier(it, sizeof(McItem));

        // Publish (replaces the old item when present).
        if (bug("memcached.race.link_plain_store"))
            rt.store(*link, pm::PPtr<McItem>(ia));
        else
            pmlib::atomicStore(rt, *link, pm::PPtr<McItem>(ia));

        if (!old_p.null()) {
            lruErase(old_p.addr());
            op.heap().pfree(old_p.addr());
        } else {
            bumpCount(r, 1);
        }
        lru.push_back(ia);
        maybeEvict();
    }

    std::optional<std::uint64_t>
    get(std::uint64_t k, char out[mcValBytes])
    {
        McRoot *r = op.root<McRoot>();
        pm::PPtr<McItem> cur_p = rt.load(r->bucket[hashOf(k)]);
        while (!cur_p.null()) {
            McItem *cur = item(cur_p);
            if (rt.load(cur->key) == k) {
                rt.readPm(out, cur->data, mcValBytes);
                lruErase(cur_p.addr());
                lru.push_back(cur_p.addr());
                return 1;
            }
            cur_p = rt.load(cur->next);
        }
        return std::nullopt;
    }

    bool
    del(std::uint64_t k)
    {
        McRoot *r = op.root<McRoot>();
        pm::PPtr<McItem> *link = &r->bucket[hashOf(k)];
        pm::PPtr<McItem> cur_p = rt.load(*link);
        while (!cur_p.null()) {
            McItem *cur = item(cur_p);
            if (rt.load(cur->key) == k) {
                pmlib::atomicStore(rt, *link, rt.load(cur->next));
                lruErase(cur_p.addr());
                op.heap().pfree(cur_p.addr());
                bumpCount(r, -1);
                return true;
            }
            link = &cur->next;
            cur_p = rt.load(*link);
        }
        return false;
    }

    std::uint64_t
    itemCount()
    {
        return rt.load(op.root<McRoot>()->itemCount);
    }

    std::size_t lruSize() const { return lru.size(); }

    /** Full walk reading every item (startup warm-up). */
    void
    scan()
    {
        McRoot *r = op.root<McRoot>();
        char buf[mcValBytes];
        for (unsigned i = 0; i < mcBuckets; i++) {
            pm::PPtr<McItem> cur_p = rt.load(r->bucket[i]);
            while (!cur_p.null()) {
                McItem *cur = item(cur_p);
                (void)rt.load(cur->key);
                rt.readPm(buf, cur->data, mcValBytes);
                cur_p = rt.load(cur->next);
            }
        }
    }

  private:
    bool bug(const char *id) const { return bugs.has(id); }

    McItem *item(pm::PPtr<McItem> p) { return p.get(rt.pool()); }

    std::uint64_t
    hashOf(std::uint64_t k) const
    {
        std::uint64_t x = k * 0xc6a4a7935bd1e995ull;
        x ^= x >> 31;
        return x % mcBuckets;
    }

    void
    bumpCount(McRoot *r, int delta)
    {
        rt.store(r->itemCount, rt.load(r->itemCount) +
                                   static_cast<std::uint64_t>(delta));
        rt.persistBarrier(&r->itemCount, sizeof(r->itemCount));
    }

    void
    lruErase(Addr a)
    {
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == a) {
                lru.erase(it);
                return;
            }
        }
    }

    void
    maybeEvict()
    {
        McRoot *r = op.root<McRoot>();
        while (lru.size() > capacity) {
            Addr victim = lru.front();
            lru.pop_front();
            McItem *vi = static_cast<McItem *>(rt.pool().toHost(victim));
            std::uint64_t vk = rt.load(vi->key);
            pm::PPtr<McItem> *link = &r->bucket[hashOf(vk)];
            pm::PPtr<McItem> cur_p = rt.load(*link);
            while (!cur_p.null() && cur_p.addr() != victim) {
                link = &item(cur_p)->next;
                cur_p = rt.load(*link);
            }
            if (cur_p.null())
                continue;
            if (bug("memcached.race.evict_plain_store"))
                rt.store(*link, rt.load(vi->next));
            else
                pmlib::atomicStore(rt, *link, rt.load(vi->next));
            op.heap().pfree(victim);
            bumpCount(r, -1);
        }
    }

    trace::PmRuntime &rt;
    pmlib::ObjPool &op;
    const BugMask &bugs;
    std::uint64_t capacity;
    /** Volatile LRU: front = coldest. */
    std::list<Addr> lru;
};

void
apply(Impl &impl, const KvAction &a)
{
    char buf[mcValBytes];
    switch (a.op) {
      case KvOp::Insert:
        impl.set(a.key, a.val);
        break;
      case KvOp::Remove:
        impl.del(a.key);
        break;
      case KvOp::Get:
        (void)impl.get(a.key, buf);
        break;
    }
}

} // namespace

void
MiniMemcached::pre(trace::PmRuntime &rt)
{
    if (cfg.roiFromStart)
        rt.roiBegin();
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "mini_memcached", sizeof(McRoot));
    Impl impl(rt, op, cfg.bugs, cfg.memcachedCapacity);
    impl.createCache();
    auto actions = kvActions(cfg, cfg.initOps + cfg.testOps);
    for (unsigned i = 0; i < cfg.initOps; i++)
        apply(impl, actions[i]);
    if (!cfg.roiFromStart)
        rt.roiBegin();
    for (unsigned i = cfg.initOps; i < cfg.initOps + cfg.testOps; i++)
        apply(impl, actions[i]);
    rt.roiEnd();
}

void
MiniMemcached::post(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(rt, "mini_memcached", sizeof(McRoot));
    Impl impl(rt, op, cfg.bugs, cfg.memcachedCapacity);
    trace::RoiScope roi(rt);
    impl.rebuildIndex();
    (void)impl.itemCount();
    impl.scan();
    unsigned done = cfg.initOps + cfg.testOps;
    auto actions = kvActions(cfg, done + cfg.postOps);
    for (unsigned i = done; i < done + cfg.postOps; i++)
        apply(impl, actions[i]);
}

std::string
MiniMemcached::verify(trace::PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::open(rt, "mini_memcached");
    Impl impl(rt, op, cfg.bugs, cfg.memcachedCapacity);
    auto expected = kvExpected(cfg, cfg.initOps + cfg.testOps);
    if (expected.size() > cfg.memcachedCapacity)
        return ""; // eviction makes exact contents LRU-dependent
    for (const auto &[k, v] : expected) {
        char got[mcValBytes];
        if (!impl.get(k, got))
            return strprintf("key %llu missing",
                             static_cast<unsigned long long>(k));
        char want[mcValBytes];
        renderVal(v, want);
        if (std::memcmp(got, want, mcValBytes) != 0)
            return strprintf("key %llu has wrong value",
                             static_cast<unsigned long long>(k));
    }
    if (impl.itemCount() != expected.size())
        return strprintf("itemCount %llu != expected %zu",
                         static_cast<unsigned long long>(
                             impl.itemCount()),
                         expected.size());
    return "";
}

} // namespace xfd::workloads
