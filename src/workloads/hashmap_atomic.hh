/**
 * @file
 * Low-level persistent chained hashmap (PMDK example "hashmap_atomic"
 * equivalent). No transactions: crash consistency comes from ordering
 * persists by hand plus the `count_dirty` commit variable that
 * versions `count` (recovery recounts the buckets when dirty).
 *
 * This is the workload the paper's §6.3.2 bugs 1 and 2 live in: the
 * as-shipped creation path leaves the hash-function metadata
 * unpersisted and relies on the allocator's implicit zeroing of
 * `count`. Both are reproduced behind the `hashmap_atomic.shipped.*`
 * flags, alongside the synthetic Table 5 suite.
 */

#ifndef XFD_WORKLOADS_HASHMAP_ATOMIC_HH
#define XFD_WORKLOADS_HASHMAP_ATOMIC_HH

#include "workloads/workload.hh"

namespace xfd::workloads
{

/** The Hashmap-Atomic workload of Table 4. */
class HashmapAtomic : public Workload
{
  public:
    using Workload::Workload;

    const char *name() const override { return "Hashmap-Atomic"; }
    void pre(trace::PmRuntime &rt) override;
    void post(trace::PmRuntime &rt) override;
    std::string verify(trace::PmRuntime &rt) override;
};

} // namespace xfd::workloads

#endif // XFD_WORKLOADS_HASHMAP_ATOMIC_HH
