/**
 * @file
 * xfdetect — command-line front door, the equivalent of the paper
 * artifact's run.sh / runRedis.sh / runMemcached.sh scripts:
 *
 *   ./run.sh <WORKLOAD> <INITSIZE> <TESTSIZE> <PATCH>
 *
 * becomes
 *
 *   xfdetect --workload <name> --init N --test N [--bug <id>]...
 *
 * Examples:
 *   xfdetect --list-workloads
 *   xfdetect --list-bugs btree
 *   xfdetect --workload btree --init 5 --test 5 \
 *            --bug btree.race.leaf_no_add
 *   xfdetect --workload redis --roi-from-start \
 *            --bug redis.shipped.init_no_tx
 *   xfdetect --workload hashmap_tx --baseline     # pre-failure only
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <fstream>
#include <map>

#include "bugsuite/registry.hh"
#include "core/config_flags.hh"
#include "core/explain.hh"
#include "core/prefailure_checker.hh"
#include "fix/fix.hh"
#include "lint/lint.hh"
#include "mutate/campaign.hh"
#include "obs/progress.hh"
#include "oracle/diff.hh"
#include "trace/serialize.hh"
#include "workloads/workload.hh"
#include "xfd.hh"

using namespace xfd;

namespace
{

void
usage()
{
    std::printf(
        "usage: xfdetect [options]\n"
        "  --workload <name>      workload to test (see "
        "--list-workloads)\n"
        "  --init <n>             insertions before the RoI "
        "(default 5)\n"
        "  --test <n>             operations inside the RoI "
        "(default 5)\n"
        "  --post <n>             resumption operations (default 2)\n"
        "  --seed <n>             workload RNG seed (default 42)\n"
        "  --bug <id>             inject a synthetic bug "
        "(repeatable; see --list-bugs)\n"
        "  --roi-from-start       include pool creation in the RoI\n"
        "  --baseline             run the pre-failure-only baseline "
        "checker instead\n"
        "  --threads <n>          parallel post-failure execution "
        "(default 1)\n"
        "  --dump-pre-trace <f>   run the pre-failure stage and write "
        "its trace to <f>\n"
        "  --analyze-trace <f>    load a dumped trace: op histogram, "
        "failure plan,\n"
        "                         baseline findings (no workload "
        "needed)\n"
        "  --stats-json <f>       write campaign stats (timing, "
        "shadow-FSM edges,\n"
        "                         latency histogram) as JSON to <f>\n"
        "  --trace-events <f>     write per-phase spans in Chrome "
        "trace_event format\n"
        "                         to <f> (load in chrome://tracing)\n"
        "  --report-json <f>      write the findings as JSON to <f>\n"
        "  --fingerprint <f>      write the findings fingerprint (one "
        "sorted\n"
        "                         type|reader|writer|note line per "
        "finding) to <f>,\n"
        "                         \"-\" for stdout — byte-comparable "
        "across backends\n"
        "  --lint-json <f>        write the lint report as JSON to <f>\n"
        "                         (implies --lint when not given)\n"
        "  --explain <id>         after the campaign, walk one "
        "finding's causal chain\n"
        "                         (\"F2\", \"2\", or \"all\": writer, "
        "failure point, frontier,\n"
        "                         persisted-subset mask)\n"
        "  --quiet                suppress info output\n"
        "  --list-workloads       print workload names and exit\n"
        "  --list-bugs [wl]       print bug ids (optionally for one "
        "workload) and exit\n"
        "detector options (echoed under \"config\" in --stats-json):\n"
        "%s",
        core::detectorFlagHelp().c_str());
}

int
listBugs(const char *workload)
{
    for (const auto &c : bugsuite::allBugCases()) {
        if (workload && c.workload != workload)
            continue;
        if (c.id.empty())
            continue;
        std::printf("%-48s [%s, expect %s]\n    %s\n", c.id.c_str(),
                    bugsuite::originName(c.origin),
                    bugsuite::expectedName(c.expected),
                    c.description.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 5;
    cfg.postOps = 2;
    core::DetectorConfig dcfg;
    bool baseline = false;
    unsigned threads = 1;
    std::string dump_trace_path;
    std::string analyze_trace_path;
    std::string stats_json_path;
    std::string trace_events_path;
    std::string report_json_path;
    std::string fingerprint_path;
    std::string lint_json_path;
    std::string explain_selector;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; i++) {
        const char *a = argv[i];
        // Every value-taking option accepts both "--flag value" and
        // "--flag=value"; boolean options only match their bare
        // spelling.
        std::string name = a;
        const char *attached = nullptr;
        if (std::size_t eq = name.find('='); eq != std::string::npos) {
            attached = a + eq + 1;
            name.resize(eq);
        }
        const char *n = name.c_str();
        auto val = [&]() -> const char * {
            return attached ? attached : need_value(i);
        };
        if (!std::strcmp(a, "--help") || !std::strcmp(a, "-h")) {
            usage();
            return 0;
        } else if (!std::strcmp(a, "--list-workloads")) {
            for (const auto &n : workloads::workloadNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (!std::strcmp(a, "--list-bugs")) {
            const char *wl =
                (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                        : nullptr;
            return listBugs(wl);
        } else if (!std::strcmp(n, "--workload")) {
            workload = val();
        } else if (!std::strcmp(n, "--init")) {
            cfg.initOps = static_cast<unsigned>(
                std::strtoul(val(), nullptr, 10));
        } else if (!std::strcmp(n, "--test")) {
            cfg.testOps = static_cast<unsigned>(
                std::strtoul(val(), nullptr, 10));
        } else if (!std::strcmp(n, "--post")) {
            cfg.postOps = static_cast<unsigned>(
                std::strtoul(val(), nullptr, 10));
        } else if (!std::strcmp(n, "--seed")) {
            cfg.seed = std::strtoull(val(), nullptr, 10);
        } else if (!std::strcmp(n, "--bug")) {
            cfg.bugs.enable(val());
        } else if (!std::strcmp(a, "--roi-from-start")) {
            cfg.roiFromStart = true;
        } else if (!std::strcmp(a, "--baseline")) {
            baseline = true;
        } else if (!std::strcmp(n, "--threads")) {
            threads = static_cast<unsigned>(
                std::strtoul(val(), nullptr, 10));
        } else if (!std::strcmp(n, "--dump-pre-trace")) {
            dump_trace_path = val();
        } else if (!std::strcmp(n, "--analyze-trace")) {
            analyze_trace_path = val();
        } else if (!std::strcmp(n, "--stats-json")) {
            stats_json_path = val();
        } else if (!std::strcmp(n, "--trace-events")) {
            trace_events_path = val();
        } else if (!std::strcmp(n, "--report-json")) {
            report_json_path = val();
        } else if (!std::strcmp(n, "--fingerprint")) {
            fingerprint_path = val();
        } else if (!std::strcmp(n, "--lint-json")) {
            lint_json_path = val();
        } else if (!std::strcmp(n, "--explain")) {
            explain_selector = val();
        } else if (!std::strcmp(a, "--quiet")) {
            setVerbose(false);
        } else {
            // All DetectorConfig knobs come from one descriptor
            // table (config_flags.cc) — parsing, --help, and the
            // stats-JSON config echo cannot drift apart. Flags with
            // an implied value ("--mutate") only take the attached
            // form.
            const core::ConfigFlagDesc *d =
                core::findDetectorFlag(n);
            if (!d) {
                std::fprintf(stderr, "unknown option: %s\n", a);
                usage();
                return 2;
            }
            const char *value = attached;
            if (!value && d->takesValue())
                value = need_value(i);
            core::applyDetectorFlag(*d, dcfg, value);
        }
    }

    if (dcfg.crashStatesOn() && dcfg.crashImageMode) {
        std::fprintf(stderr,
                     "--crash-states already explores realistic "
                     "partial images; it cannot be combined with "
                     "--crash-image\n");
        return 2;
    }

    if (!dcfg.fixTargets.empty() && !dcfg.mutateOps.empty()) {
        std::fprintf(stderr,
                     "--fix machine-checks repairs of this (buggy) "
                     "workload; it cannot be combined with --mutate's "
                     "fault injection of a correct one\n");
        return 2;
    }
    if (!dcfg.fixTargets.empty() && !dcfg.oracleMode.empty()) {
        warn("--oracle is implied by --fix (every candidate repair is "
             "cross-checked against the oracle); ignoring the "
             "explicit flag");
        dcfg.oracleMode.clear();
    }

    bool lint_on = !dcfg.lintRules.empty() || !lint_json_path.empty();
    lint::LintConfig lcfg;
    lcfg.granularity = dcfg.granularity;
    lcfg.flushFree = dcfg.eadrOn();
    if (lint_on) {
        std::string err;
        if (!lint::parseRuleList(dcfg.lintRules, lcfg.rules, &err)) {
            std::fprintf(stderr, "--lint: %s\n", err.c_str());
            return 2;
        }
    }
    auto write_lint_json = [&](const lint::LintReport &lrep) -> bool {
        std::ofstream out(lint_json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         lint_json_path.c_str());
            return false;
        }
        obs::JsonWriter w(out);
        lint::writeLintJson(lrep, w);
        out << '\n';
        inform("wrote lint report to %s", lint_json_path.c_str());
        return true;
    };

    if (!analyze_trace_path.empty()) {
        // Offline analysis of a dumped trace: the decoupled-backend
        // path of §5.5 — no workload binary required.
        std::ifstream in(analyze_trace_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n",
                         analyze_trace_path.c_str());
            return 2;
        }
        trace::Reader reader(in); // sniffs v1/v2 framing
        trace::LoadedTrace loaded = reader.read();
        const trace::TraceBuffer &buf = loaded.buffer();
        std::map<std::string, std::size_t> histogram;
        Addr lo = ~static_cast<Addr>(0), hi = 0;
        for (const auto &e : buf) {
            histogram[trace::opName(e.op)]++;
            if (e.isWrite() || e.op == trace::Op::Read) {
                lo = std::min(lo, e.addr);
                hi = std::max(hi, e.addr + e.size);
            }
        }
        std::printf("trace: %zu entries, %zu bytes of write payload "
                    "(format v%u)\n",
                    buf.size(), buf.payloadBytes(),
                    loaded.formatVersion());
        for (const auto &[name, n] : histogram)
            std::printf("  %-14s %8zu\n", name.c_str(), n);
        if (!loaded.allocSites().empty()) {
            std::printf("allocation sites: %zu\n",
                        loaded.allocSites().size());
            for (const auto &l : loaded.allocSites())
                std::printf("  %s\n", l.str().c_str());
        }
        if (hi > lo) {
            std::printf("touched PM range: [%#llx, %#llx)\n",
                        static_cast<unsigned long long>(lo),
                        static_cast<unsigned long long>(hi));
            auto plan = core::planFailurePoints(buf, dcfg);
            std::printf("failure plan: %zu points (%zu candidates, "
                        "%zu elided)\n",
                        plan.points.size(), plan.candidates,
                        plan.elided);
            core::PreFailureChecker checker(
                {lineBase(lo) & ~static_cast<Addr>(4095),
                 hi + 4096});
            auto findings = checker.check(buf);
            std::printf("baseline findings: %zu\n", findings.size());
            for (const auto &f : findings)
                std::printf("%s\n", f.str().c_str());
        }
        if (lint_on) {
            core::FailurePlan plan = core::planFailurePoints(buf, dcfg);
            lint::LintReport lrep =
                lint::runLint(buf, lcfg, &plan.points);
            std::printf("%s", lint::renderText(lrep).c_str());
            if (!lint_json_path.empty() && !write_lint_json(lrep))
                return 2;
        }
        return 0;
    }

    if (workload.empty()) {
        usage();
        return 2;
    }

    auto w = workloads::makeWorkload(workload, cfg);
    pm::PmPool pool(1 << 23);

    if (!dump_trace_path.empty()) {
        trace::TraceBuffer pre;
        trace::PmRuntime rt(pool, pre, trace::Stage::PreFailure);
        try {
            w->pre(rt);
        } catch (const trace::StageComplete &) {
        }
        std::ofstream out(dump_trace_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         dump_trace_path.c_str());
            return 2;
        }
        trace::writeTrace(pre, out);
        std::printf("wrote %zu trace entries to %s\n", pre.size(),
                    dump_trace_path.c_str());
        return 0;
    }

    if (baseline) {
        trace::TraceBuffer pre;
        trace::PmRuntime rt(pool, pre, trace::Stage::PreFailure);
        try {
            w->pre(rt);
        } catch (const trace::StageComplete &) {
        }
        core::PreFailureChecker checker(pool.range());
        auto findings = checker.check(pre);
        std::printf("baseline (pre-failure-only) checker: %zu "
                    "finding(s)\n",
                    findings.size());
        for (const auto &f : findings)
            std::printf("%s\n", f.str().c_str());
        return findings.empty() ? 0 : 1;
    }

    core::CampaignObserver obs;
    obs.timeline.setEnabled(!trace_events_path.empty());

    // All campaign events arrive through one CampaignHooks interface:
    // the progress meter, and (when lint/--explain need it) the
    // captured pre-failure trace.
    struct CliHooks : core::CampaignHooks
    {
        obs::ProgressMeter meter{"fp"};
        trace::TraceBuffer *capture = nullptr;

        void
        onProgress(const core::ProgressUpdate &u) override
        {
            meter.update(u.done, u.total, u.bugs);
        }

        void
        onPreTraceReady(const trace::TraceBuffer &b) override
        {
            if (capture)
                *capture = b;
        }
    } hooks;
    static_assert(core::CampaignHooks::version == 2,
                  "campaign hook interface changed; re-audit CliHooks");
    obs.hooks = &hooks;

    // One process-wide live session: serves /metrics + /snapshot and
    // streams JSONL across every campaign this invocation runs. The
    // Campaign facade sees obs.live already enabled and does not
    // stack a second session.
    std::unique_ptr<obs::LiveSession> live_session;
    if (dcfg.liveRequested()) {
        obs::LiveSession::Options lopt;
        lopt.serve = dcfg.livePort != 0;
        lopt.port = static_cast<std::uint16_t>(dcfg.livePort);
        lopt.jsonlPath = dcfg.liveJsonlPath;
        live_session =
            std::make_unique<obs::LiveSession>(obs.live, lopt);
        if (!live_session->ok()) {
            std::fprintf(stderr, "--live: %s\n",
                         live_session->error().c_str());
            return 2;
        }
    }

    // Lint and --explain consume the campaign's own pre-failure
    // trace, captured through the observer hook — the pre stage is
    // never re-run.
    trace::TraceBuffer captured_pre;
    if (lint_on && !dcfg.mutateOps.empty()) {
        warn("--lint is ignored in --mutate mode (each mutant traces "
             "differently; lint one configuration at a time)");
        lint_on = false;
    }
    if (!explain_selector.empty() && !dcfg.mutateOps.empty()) {
        warn("--explain is ignored in --mutate mode (the scoreboard "
             "aggregates many campaigns; explain one configuration "
             "at a time)");
        explain_selector.clear();
    }
    if (lint_on || !explain_selector.empty())
        hooks.capture = &captured_pre;

    core::CampaignResult res;
    std::vector<core::JsonSection> extra;
    mutate::MutationReport mrep;
    oracle::DiffReport orep;
    fix::FixReport frep;
    bool fix_on = !dcfg.fixTargets.empty();
    int exit_code = 0;

    bool oracle_on = !dcfg.oracleMode.empty();
    oracle::DiffConfig ocfg;
    if (oracle_on) {
        std::string err;
        if (!oracle::parseOracleMode(dcfg.oracleMode, ocfg.exhaustive,
                                     ocfg.sampleCount, &err)) {
            std::fprintf(stderr, "--oracle: %s\n", err.c_str());
            return 2;
        }
        ocfg.detector = dcfg;
        // The echo-only campaign modes must not recurse into the
        // differential run.
        ocfg.detector.mutateOps.clear();
        ocfg.detector.oracleMode.clear();
        ocfg.threads = threads;
        ocfg.artifactDir = dcfg.oracleArtifactDir;
        ocfg.observer = &obs;
    }

    if (fix_on) {
        // Fix mode: detect + lint the broken workload, synthesize a
        // repair plan per finding, machine-check each by re-running
        // the campaign with the repair applied as an inverse
        // mutation.
        fix::FixConfig fxcfg;
        fxcfg.pre = [&](trace::PmRuntime &rt) { w->pre(rt); };
        fxcfg.post = [&](trace::PmRuntime &rt) { w->post(rt); };
        fxcfg.poolBytes = 1 << 23;
        fxcfg.threads = threads;
        fxcfg.detector = dcfg;
        fxcfg.targets = dcfg.fixTargets;
        fxcfg.observer = &obs;
        obs::ProgressMeter fixMeter("plan");
        fxcfg.onPlan = [&fixMeter](std::size_t done,
                                   std::size_t total,
                                   const fix::RepairPlan &,
                                   fix::Verdict) {
            fixMeter.update(done, total, 0);
        };
        frep = fix::runFixCampaign(fxcfg);
        std::printf("%s", frep.baseline.summary().c_str());
        std::printf("%s", frep.scoreboard().c_str());
        fix::exportFixStats(frep, obs.stats);
        res = frep.baseline;
        extra.push_back(core::JsonSection{
            "fix", [&frep](obs::JsonWriter &w) { frep.writeJson(w); }});
        // A regressed plan means the advisor made things worse —
        // that, not the baseline's (expected) findings, is the
        // failure mode of fix mode.
        exit_code = frep.regressed ? 1 : 0;
    } else if (!dcfg.mutateOps.empty()) {
        // Mutation mode: score the detector against fault injections
        // of this (assumed-correct) workload configuration.
        mutate::PerOp<bool> ops{};
        std::string err;
        if (!mutate::parseMutationOps(dcfg.mutateOps, ops, &err)) {
            std::fprintf(stderr, "--mutate: %s\n", err.c_str());
            return 2;
        }
        mutate::MutationConfig mcfg;
        mcfg.pre = [&](trace::PmRuntime &rt) { w->pre(rt); };
        mcfg.post = [&](trace::PmRuntime &rt) { w->post(rt); };
        mcfg.poolBytes = 1 << 23;
        mcfg.threads = threads;
        mcfg.detector = dcfg;
        mcfg.ops = ops;
        mcfg.seed = dcfg.mutationSeed;
        mcfg.maxPerOp = dcfg.mutationMaxPerOp;
        mcfg.observer = &obs;
        obs::ProgressMeter mutMeter("mutant");
        mcfg.onMutant = [&mutMeter](std::size_t done,
                                    std::size_t total,
                                    const mutate::Mutant &, bool) {
            mutMeter.update(done, total, 0);
        };
        mrep = mutate::runMutationCampaign(mcfg);
        std::printf("%s", mrep.scoreboard().c_str());
        mutate::exportMutationStats(mrep, obs.stats);
        res = mrep.baseline;
        extra.push_back(core::JsonSection{
            "mutation",
            [&mrep](obs::JsonWriter &w) { mrep.writeJson(w); }});
        if (oracle_on) {
            // Cross-check the unmutated workload; the scored campaign
            // above used its own pools, so this one is still fresh.
            orep = oracle::runDifferentialCampaign(
                pool, [&](trace::PmRuntime &rt) { w->pre(rt); },
                [&](trace::PmRuntime &rt) { w->post(rt); }, ocfg);
            std::printf("%s", orep.summary().c_str());
        }
    } else if (oracle_on) {
        // Differential mode: one detector campaign (captured through
        // observer hooks) cross-checked by the crash-state oracle.
        orep = oracle::runDifferentialCampaign(
            pool, [&](trace::PmRuntime &rt) { w->pre(rt); },
            [&](trace::PmRuntime &rt) { w->post(rt); }, ocfg);
        res = orep.detector;
        std::printf("%s", res.summary().c_str());
        std::printf("%s", orep.summary().c_str());
        exit_code = res.hasBugs() ? 1 : 0;
    } else {
        res = Campaign::forProgram(
                  [&](trace::PmRuntime &rt) { w->pre(rt); },
                  [&](trace::PmRuntime &rt) { w->post(rt); })
                  .config(dcfg)
                  .onPool(pool)
                  .threads(threads)
                  .observer(&obs)
                  .run();
        std::printf("%s", res.summary().c_str());
        exit_code = res.hasBugs() ? 1 : 0;
    }

    if (oracle_on) {
        oracle::exportOracleStats(obs.stats, orep);
        extra.push_back(oracle::oracleJsonSection(orep));
        // Exit 3 signals a conformance break, distinct from findings
        // (1) and usage errors (2).
        if (!orep.clean())
            exit_code = 3;
    }

    // Static lint over the captured pre-trace: prunability verdicts
    // are computed against the full (unpruned) failure plan so the
    // report shows what --backend=batched would fold even when off.
    lint::LintReport lrep;
    if (lint_on) {
        core::FailurePlan lplan =
            core::planFailurePoints(captured_pre, dcfg);
        lrep = lint::runLint(captured_pre, lcfg, &lplan.points);
        std::printf("%s", lint::renderText(lrep).c_str());
        extra.push_back(core::JsonSection{
            "lint", [&lrep](obs::JsonWriter &w) {
                lint::writeLintJson(lrep, w);
            }});
        if (!lint_json_path.empty() && !write_lint_json(lrep))
            return 2;
    }

    auto open_out = [](const std::string &path,
                       std::ofstream &out) -> bool {
        out.open(path);
        if (!out)
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return static_cast<bool>(out);
    };
    if (!stats_json_path.empty()) {
        std::ofstream out;
        if (!open_out(stats_json_path, out))
            return 2;
        core::writeStatsJson(res, &dcfg,
                             obs.stats.empty() ? nullptr : &obs.stats,
                             out, extra);
        inform("wrote campaign stats to %s", stats_json_path.c_str());
    }
    if (!trace_events_path.empty()) {
        std::ofstream out;
        if (!open_out(trace_events_path, out))
            return 2;
        obs.timeline.writeChromeTrace(out);
        inform("wrote %zu trace events to %s", obs.timeline.size(),
               trace_events_path.c_str());
    }
    if (!report_json_path.empty()) {
        std::ofstream out;
        if (!open_out(report_json_path, out))
            return 2;
        core::writeReportJson(res, out);
        inform("wrote findings report to %s", report_json_path.c_str());
    }
    if (!fingerprint_path.empty()) {
        if (fingerprint_path == "-") {
            std::printf("%s", res.fingerprint().c_str());
        } else {
            std::ofstream out;
            if (!open_out(fingerprint_path, out))
                return 2;
            out << res.fingerprint();
            inform("wrote findings fingerprint to %s",
                   fingerprint_path.c_str());
        }
    }
    if (!explain_selector.empty()) {
        std::string err;
        std::string text = core::renderExplain(
            res, explain_selector,
            captured_pre.size() ? &captured_pre : nullptr, &err);
        if (text.empty()) {
            std::fprintf(stderr, "--explain: %s\n", err.c_str());
            return 2;
        }
        std::printf("%s", text.c_str());
        if (fix_on) {
            // Patch sites for the explained finding(s).
            if (explain_selector == "all") {
                for (std::size_t i = 0; i < res.bugs.size(); i++) {
                    std::printf("%s",
                                frep.renderFixFor(
                                        "F" + std::to_string(i + 1))
                                    .c_str());
                }
            } else {
                std::string fid = explain_selector[0] == 'F'
                                      ? explain_selector
                                      : "F" + explain_selector;
                std::printf("%s", frep.renderFixFor(fid).c_str());
            }
        }
    }
    return exit_code;
}
